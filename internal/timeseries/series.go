// Package timeseries provides the time-series primitives used throughout the
// LARPredictor reproduction: a timestamped Series type, summary statistics,
// autocovariance/autocorrelation estimation, z-score normalization with
// reusable coefficients (the paper normalizes test data "using the
// normalization coefficient derived from the training phase"), sliding-window
// framing, train/test splitting including the paper's repeated random-split
// cross-validation, and CSV import/export.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrEmpty is returned when an operation requires a non-empty series.
var ErrEmpty = errors.New("timeseries: empty series")

// ErrShort is returned when a series is too short for the requested
// operation (e.g. framing with a window longer than the series).
var ErrShort = errors.New("timeseries: series too short")

// Point is a single timestamped observation.
type Point struct {
	Time  time.Time
	Value float64
}

// Series is an ordered sequence of values at (nominally) equally spaced
// time intervals, as defined in Section 4 of the paper. Timestamps are
// optional: a Series constructed FromValues carries a synthetic zero-based
// clock with a 1-unit step so positional operations still work.
type Series struct {
	// Name identifies the series, conventionally "<vm>_<metric>"
	// (e.g. "VM2_load15").
	Name string
	// Interval is the nominal sampling interval.
	Interval time.Duration
	// Start is the timestamp of the first sample.
	Start time.Time
	// Values holds the observations in time order.
	Values []float64
}

// New returns a Series with the given metadata and a copy of values.
func New(name string, start time.Time, interval time.Duration, values []float64) *Series {
	v := make([]float64, len(values))
	copy(v, values)
	return &Series{Name: name, Interval: interval, Start: start, Values: v}
}

// FromValues wraps a raw value slice in a Series with a synthetic clock.
// The slice is copied.
func FromValues(name string, values []float64) *Series {
	return New(name, time.Unix(0, 0).UTC(), time.Second, values)
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of observation i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// At returns observation i.
func (s *Series) At(i int) float64 { return s.Values[i] }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return New(s.Name, s.Start, s.Interval, s.Values)
}

// Slice returns a new Series covering observations [lo, hi). The underlying
// values are copied and the start time advanced accordingly.
func (s *Series) Slice(lo, hi int) (*Series, error) {
	if lo < 0 || hi > len(s.Values) || lo > hi {
		return nil, fmt.Errorf("timeseries: Slice[%d:%d] of %d samples: %w", lo, hi, len(s.Values), ErrShort)
	}
	out := New(s.Name, s.TimeAt(lo), s.Interval, s.Values[lo:hi])
	return out, nil
}

// Points materializes the series as timestamped points.
func (s *Series) Points() []Point {
	pts := make([]Point, len(s.Values))
	for i, v := range s.Values {
		pts[i] = Point{Time: s.TimeAt(i), Value: v}
	}
	return pts
}

// IsConstant reports whether every observation equals the first (within
// eps). Constant series are a degenerate case for normalization and AR
// fitting and several callers branch on it.
func (s *Series) IsConstant(eps float64) bool {
	if len(s.Values) == 0 {
		return true
	}
	first := s.Values[0]
	for _, v := range s.Values[1:] {
		if math.Abs(v-first) > eps {
			return false
		}
	}
	return true
}

// Validate returns an error if the series contains NaN or Inf values.
func (s *Series) Validate() error {
	for i, v := range s.Values {
		if math.IsNaN(v) {
			return fmt.Errorf("timeseries: %s: NaN at index %d", s.Name, i)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("timeseries: %s: Inf at index %d", s.Name, i)
		}
	}
	return nil
}
