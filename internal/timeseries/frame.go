package timeseries

import (
	"fmt"
)

// Frame is a single prediction window paired with the observation that
// immediately follows it. The LARPredictor dataflow (paper Figure 3) frames a
// u-sample series into (u-m) windows of length m; window i covers samples
// [i, i+m) and its target is sample i+m.
type Frame struct {
	// Index is the position of the first sample of the window in the
	// source series.
	Index int
	// Window holds the m samples feeding the predictors.
	Window []float64
	// Target is the observed next value the predictors try to forecast.
	Target float64
}

// FrameSeries slices v into overlapping windows of length m, each paired
// with its next-value target. It returns len(v)-m frames. The window slices
// alias v — callers that mutate them must copy first.
func FrameSeries(v []float64, m int) ([]Frame, error) {
	if m < 1 {
		return nil, fmt.Errorf("timeseries: window size %d < 1", m)
	}
	if len(v) <= m {
		return nil, fmt.Errorf("timeseries: need > %d samples to frame with window %d, have %d: %w",
			m, m, len(v), ErrShort)
	}
	frames := make([]Frame, 0, len(v)-m)
	for i := 0; i+m < len(v); i++ {
		frames = append(frames, Frame{
			Index:  i,
			Window: v[i : i+m],
			Target: v[i+m],
		})
	}
	return frames, nil
}

// Windows returns the frame windows as a row-per-window slice-of-slices,
// the X'_{(u-m+1)×m} layout fed to the PCA processor.
func Windows(frames []Frame) [][]float64 {
	out := make([][]float64, len(frames))
	for i, f := range frames {
		out[i] = f.Window
	}
	return out
}

// Targets returns the frame targets in order.
func Targets(frames []Frame) []float64 {
	out := make([]float64, len(frames))
	for i, f := range frames {
		out[i] = f.Target
	}
	return out
}
