package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvTimeLayout is the timestamp format used in trace CSV files.
const csvTimeLayout = time.RFC3339

// WriteCSV writes the series to w as "timestamp,value" rows with a header.
func WriteCSV(w io.Writer, s *Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", s.Name}); err != nil {
		return fmt.Errorf("timeseries: write csv header: %w", err)
	}
	for i, v := range s.Values {
		rec := []string{
			s.TimeAt(i).Format(csvTimeLayout),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("timeseries: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a two-column "timestamp,value" CSV produced by WriteCSV.
// The series name is taken from the header's second column. The sampling
// interval is inferred from the first two timestamps (time.Second if fewer
// than two rows are present).
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("timeseries: read csv header: %w", err)
	}
	name := header[1]
	var (
		values []float64
		times  []time.Time
	)
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("timeseries: read csv row %d: %w", row, err)
		}
		ts, err := time.Parse(csvTimeLayout, rec[0])
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d: bad timestamp %q: %w", row, rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d: bad value %q: %w", row, rec[1], err)
		}
		times = append(times, ts)
		values = append(values, v)
	}
	s := &Series{Name: name, Values: values, Interval: time.Second, Start: time.Unix(0, 0).UTC()}
	if len(times) > 0 {
		s.Start = times[0]
	}
	if len(times) > 1 {
		s.Interval = times[1].Sub(times[0])
	}
	return s, nil
}

// WriteMultiCSV writes several aligned series (same length) as one CSV with
// a timestamp column followed by one column per series. It returns an error
// if the series lengths differ.
func WriteMultiCSV(w io.Writer, series []*Series) error {
	if len(series) == 0 {
		return ErrEmpty
	}
	n := series[0].Len()
	header := make([]string, 0, len(series)+1)
	header = append(header, "timestamp")
	for _, s := range series {
		if s.Len() != n {
			return fmt.Errorf("timeseries: WriteMultiCSV: series %q has %d samples, want %d", s.Name, s.Len(), n)
		}
		header = append(header, s.Name)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("timeseries: write csv header: %w", err)
	}
	rec := make([]string, len(series)+1)
	for i := 0; i < n; i++ {
		rec[0] = series[0].TimeAt(i).Format(csvTimeLayout)
		for j, s := range series {
			rec[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("timeseries: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMultiCSV parses a CSV produced by WriteMultiCSV back into a slice of
// series.
func ReadMultiCSV(r io.Reader) ([]*Series, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("timeseries: read csv header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("timeseries: multi csv needs >= 2 columns, have %d", len(header))
	}
	ncols := len(header) - 1
	cols := make([][]float64, ncols)
	var times []time.Time
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("timeseries: read csv row %d: %w", row, err)
		}
		ts, err := time.Parse(csvTimeLayout, rec[0])
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d: bad timestamp %q: %w", row, rec[0], err)
		}
		times = append(times, ts)
		for j := 0; j < ncols; j++ {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: row %d col %d: bad value %q: %w", row, j+1, rec[j+1], err)
			}
			cols[j] = append(cols[j], v)
		}
	}
	start := time.Unix(0, 0).UTC()
	interval := time.Second
	if len(times) > 0 {
		start = times[0]
	}
	if len(times) > 1 {
		interval = times[1].Sub(times[0])
	}
	out := make([]*Series, ncols)
	for j := 0; j < ncols; j++ {
		out[j] = &Series{Name: header[j+1], Start: start, Interval: interval, Values: cols[j]}
	}
	return out, nil
}
