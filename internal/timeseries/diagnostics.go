package timeseries

import (
	"fmt"
	"math"
)

// ACF returns the autocorrelation function for lags 0..maxLag.
func ACF(v []float64, maxLag int) ([]float64, error) {
	if maxLag < 0 {
		return nil, fmt.Errorf("timeseries: negative max lag %d", maxLag)
	}
	if maxLag >= len(v) {
		return nil, fmt.Errorf("timeseries: max lag %d >= length %d: %w", maxLag, len(v), ErrShort)
	}
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		rho, err := Autocorrelation(v, k)
		if err != nil {
			return nil, err
		}
		out[k] = rho
	}
	return out, nil
}

// PACF returns the partial autocorrelation function for lags 1..maxLag,
// computed with the Durbin–Levinson recursion. The PACF is the standard
// order-selection diagnostic for the AR expert: an AR(p) process has PACF
// that cuts off after lag p.
func PACF(v []float64, maxLag int) ([]float64, error) {
	if maxLag < 1 {
		return nil, fmt.Errorf("timeseries: PACF max lag %d < 1", maxLag)
	}
	if maxLag >= len(v) {
		return nil, fmt.Errorf("timeseries: max lag %d >= length %d: %w", maxLag, len(v), ErrShort)
	}
	rho, err := ACF(v, maxLag)
	if err != nil {
		return nil, err
	}
	if Variance(v) == 0 {
		return make([]float64, maxLag), nil
	}

	// Durbin–Levinson on autocorrelations.
	pacf := make([]float64, maxLag)
	phi := make([]float64, maxLag+1) // phi[k][j] rolled: current row
	prev := make([]float64, maxLag+1)

	pacf[0] = rho[1]
	phi[1] = rho[1]
	for k := 2; k <= maxLag; k++ {
		copy(prev, phi)
		num := rho[k]
		den := 1.0
		for j := 1; j < k; j++ {
			num -= prev[j] * rho[k-j]
			den -= prev[j] * rho[j]
		}
		if den == 0 {
			// Perfectly predictable at this order; the remaining partials
			// are zero by convention.
			for i := k - 1; i < maxLag; i++ {
				pacf[i] = 0
			}
			return pacf, nil
		}
		phikk := num / den
		pacf[k-1] = phikk
		phi[k] = phikk
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - phikk*prev[k-j]
		}
	}
	return pacf, nil
}

// LjungBox computes the Ljung–Box portmanteau statistic over the first
// `lags` autocorrelations:
//
//	Q = n(n+2) Σ_{k=1..h} ρ_k² / (n−k)
//
// Under the null hypothesis of white noise, Q is χ²(h)-distributed. The
// returned boolean reports whether the null is rejected at the 5% level
// (using the χ² critical value), i.e. whether the series carries
// autocorrelation worth modeling — the precondition for history-based
// prediction that Dinda's study established for host load.
func LjungBox(v []float64, lags int) (q float64, autocorrelated bool, err error) {
	n := len(v)
	if lags < 1 {
		return 0, false, fmt.Errorf("timeseries: Ljung-Box lags %d < 1", lags)
	}
	if lags >= n {
		return 0, false, fmt.Errorf("timeseries: Ljung-Box lags %d >= length %d: %w", lags, n, ErrShort)
	}
	rho, err := ACF(v, lags)
	if err != nil {
		return 0, false, err
	}
	for k := 1; k <= lags; k++ {
		q += rho[k] * rho[k] / float64(n-k)
	}
	q *= float64(n) * float64(n+2)
	return q, q > chiSquared95(lags), nil
}

// chiSquared95 returns the 95th percentile of the χ² distribution with df
// degrees of freedom, via the Wilson–Hilferty approximation (exact to ~1e-3
// relative for df >= 1, ample for a diagnostic test).
func chiSquared95(df int) float64 {
	const z95 = 1.6448536269514722
	d := float64(df)
	t := 1 - 2/(9*d) + z95*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// LinearTrend fits z_t ≈ a + b·t by least squares and returns the intercept
// and per-step slope.
func LinearTrend(v []float64) (intercept, slope float64, err error) {
	n := len(v)
	if n < 2 {
		return 0, 0, fmt.Errorf("timeseries: trend needs >= 2 samples: %w", ErrShort)
	}
	// Closed form with t = 0..n-1.
	tm := float64(n-1) / 2
	zm := Mean(v)
	var num, den float64
	for t, z := range v {
		dt := float64(t) - tm
		num += dt * (z - zm)
		den += dt * dt
	}
	if den == 0 {
		return zm, 0, nil
	}
	slope = num / den
	return zm - slope*tm, slope, nil
}

// Detrend removes the least-squares linear trend, returning the residuals.
func Detrend(v []float64) ([]float64, error) {
	a, b, err := LinearTrend(v)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(v))
	for t, z := range v {
		out[t] = z - (a + b*float64(t))
	}
	return out, nil
}

// Difference returns the d-th differences of v (length shrinks by d).
func Difference(v []float64, d int) ([]float64, error) {
	if d < 1 {
		return nil, fmt.Errorf("timeseries: differencing order %d < 1", d)
	}
	if len(v) <= d {
		return nil, fmt.Errorf("timeseries: %d samples for order-%d differencing: %w", len(v), d, ErrShort)
	}
	cur := append([]float64(nil), v...)
	for i := 0; i < d; i++ {
		next := make([]float64, len(cur)-1)
		for j := 1; j < len(cur); j++ {
			next[j-1] = cur[j] - cur[j-1]
		}
		cur = next
	}
	return cur, nil
}
