package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", m)
	}
	if va := Variance(v); !almostEqual(va, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", va)
	}
	if sd := StdDev(v); !almostEqual(sd, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", sd)
	}
	if sv := SampleVariance(v); !almostEqual(sv, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %g, want %g", sv, 32.0/7)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("variance of <2 samples should be 0")
	}
}

func TestAutocovarianceLag0IsVariance(t *testing.T) {
	f := func(raw [16]float64) bool {
		v := raw[:]
		for _, x := range v {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true // overflow regime is out of scope
			}
		}
		c0, err := Autocovariance(v, 0)
		if err != nil {
			return false
		}
		return almostEqual(c0, Variance(v), 1e-9*(1+math.Abs(c0)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocovarianceErrors(t *testing.T) {
	if _, err := Autocovariance([]float64{1, 2}, -1); err == nil {
		t.Error("accepted negative lag")
	}
	if _, err := Autocovariance([]float64{1, 2}, 2); err == nil {
		t.Error("accepted lag >= length")
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// Long AR(1) sample with phi = 0.8: lag-1 autocorrelation ≈ 0.8.
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	v := make([]float64, n)
	for i := 1; i < n; i++ {
		v[i] = 0.8*v[i-1] + rng.NormFloat64()
	}
	rho1, err := Autocorrelation(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho1-0.8) > 0.02 {
		t.Errorf("lag-1 autocorrelation = %g, want ~0.8", rho1)
	}
	rho0, _ := Autocorrelation(v, 0)
	if rho0 != 1 {
		t.Errorf("lag-0 autocorrelation = %g, want 1", rho0)
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	rho, err := Autocorrelation([]float64{3, 3, 3, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Errorf("constant series lag-1 autocorrelation = %g, want 0", rho)
	}
}

func TestAutocorrelationLagValidation(t *testing.T) {
	// A zero-variance series must not mask out-of-range lags: every lag
	// outside [0, len) errors exactly as it does for a varying series.
	cases := []struct {
		name   string
		v      []float64
		k      int
		wantOK bool
	}{
		{"constant valid lag", []float64{3, 3, 3, 3}, 2, true},
		{"constant lag == len", []float64{3, 3, 3, 3}, 4, false},
		{"constant lag > len", []float64{3, 3, 3, 3}, 7, false},
		{"constant negative lag", []float64{3, 3, 3, 3}, -1, false},
		{"varying lag == len", []float64{1, 2, 3}, 3, false},
		{"empty series lag 0", nil, 0, false},
	}
	for _, tc := range cases {
		rho, err := Autocorrelation(tc.v, tc.k)
		if tc.wantOK {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Autocorrelation(%v, %d) = %g, want error", tc.name, tc.v, tc.k, rho)
		}
	}
}

func TestAutocovarianceSeqPSD(t *testing.T) {
	// The biased estimator must produce |c_k| <= c_0.
	f := func(raw [32]float64, lag uint8) bool {
		v := raw[:]
		k := int(lag)%(len(v)-1) + 1
		c0, err := Autocovariance(v, 0)
		if err != nil {
			return false
		}
		ck, err := Autocovariance(v, k)
		if err != nil {
			return false
		}
		return math.Abs(ck) <= c0+1e-9*(1+c0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	f := func(raw [20]float64) bool {
		v := raw[:]
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		n := FitNormalizer(v)
		normed := n.Apply(v)
		back := n.InvertAll(normed)
		for i := range v {
			if !almostEqual(back[i], v[i], 1e-6*(1+math.Abs(v[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizerZeroMeanUnitVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 1000)
	for i := range v {
		v[i] = 42 + 13*rng.NormFloat64()
	}
	n := FitNormalizer(v)
	z := n.Apply(v)
	if m := Mean(z); !almostEqual(m, 0, 1e-9) {
		t.Errorf("normalized mean = %g", m)
	}
	if sd := StdDev(z); !almostEqual(sd, 1, 1e-9) {
		t.Errorf("normalized std = %g", sd)
	}
}

func TestNormalizerConstantSeries(t *testing.T) {
	n := FitNormalizer([]float64{5, 5, 5})
	z := n.Apply([]float64{5, 6})
	if z[0] != 0 || z[1] != 1 {
		t.Errorf("constant-fit normalization = %v, want [0 1]", z)
	}
}

func TestMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	obs := []float64{1, 4, 2}
	mse, err := MSE(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mse, (0.0+4+1)/3, 1e-12) {
		t.Errorf("MSE = %g", mse)
	}
	mae, err := MAE(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, (0.0+2+1)/3, 1e-12) {
		t.Errorf("MAE = %g", mae)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MSE accepted mismatched lengths")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("MSE accepted empty inputs")
	}
}

func TestMSENonNegativeProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		m, err := MSE(a[:], b[:])
		return err == nil && (m >= 0 || math.IsNaN(m))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
