package timeseries

import (
	"fmt"
	"time"
)

// Resample downsamples a series by an integer factor, aggregating each
// consecutive block of `factor` samples with the given aggregate function —
// the same consolidation the monitoring pipeline performs (vmkusage: five
// one-minute samples → one five-minute average). A trailing partial block is
// aggregated over the samples it has.
func Resample(s *Series, factor int, aggregate func([]float64) float64) (*Series, error) {
	if factor < 1 {
		return nil, fmt.Errorf("timeseries: resample factor %d < 1", factor)
	}
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	if aggregate == nil {
		aggregate = Mean
	}
	out := make([]float64, 0, (s.Len()+factor-1)/factor)
	for i := 0; i < s.Len(); i += factor {
		j := i + factor
		if j > s.Len() {
			j = s.Len()
		}
		out = append(out, aggregate(s.Values[i:j]))
	}
	return &Series{
		Name:     s.Name,
		Start:    s.Start,
		Interval: time.Duration(factor) * s.Interval,
		Values:   out,
	}, nil
}

// Max returns the maximum of v (0 for an empty slice), an aggregate for
// Resample.
func Max(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Min returns the minimum of v (0 for an empty slice), an aggregate for
// Resample.
func Min(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mn := v[0]
	for _, x := range v[1:] {
		if x < mn {
			mn = x
		}
	}
	return mn
}
