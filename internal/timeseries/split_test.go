package timeseries

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSplitAt(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4}
	s, err := SplitAt(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train) != 2 || len(s.Test) != 3 || s.Cut != 2 {
		t.Fatalf("split = %+v", s)
	}
	if s.Train[1] != 1 || s.Test[0] != 2 {
		t.Fatal("split halves wrong")
	}
	if _, err := SplitAt(v, 0); err == nil {
		t.Error("accepted cut 0")
	}
	if _, err := SplitAt(v, 5); err == nil {
		t.Error("accepted cut == len")
	}
}

func TestSplitFraction(t *testing.T) {
	v := make([]float64, 100)
	s, err := SplitFraction(v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cut != 50 {
		t.Errorf("cut = %d, want 50", s.Cut)
	}
	if _, err := SplitFraction(v, 0); err == nil {
		t.Error("accepted fraction 0")
	}
	if _, err := SplitFraction(v, 1); err == nil {
		t.Error("accepted fraction 1")
	}
	// Tiny series: clamped to valid cut.
	s, err = SplitFraction([]float64{1, 2}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cut != 1 {
		t.Errorf("tiny series cut = %d, want 1", s.Cut)
	}
}

func TestRandomSplitsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 288) // 24h at 5-min interval
	const m = 5
	splits, err := RandomSplits(v, 10, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 10 {
		t.Fatalf("got %d folds, want 10", len(splits))
	}
	distinct := map[int]bool{}
	for _, s := range splits {
		if len(s.Train) <= m+1 || len(s.Test) <= m+1 {
			t.Fatalf("fold with unframeable half: train=%d test=%d", len(s.Train), len(s.Test))
		}
		frac := float64(s.Cut) / float64(len(v))
		if frac < 0.35 || frac > 0.65 {
			t.Fatalf("cut fraction %g outside middle band", frac)
		}
		distinct[s.Cut] = true
	}
	if len(distinct) < 2 {
		t.Error("random splits are not random")
	}
}

func TestRandomSplitsTooShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomSplits(make([]float64, 10), 10, 16, rng); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestRandomSplitsDeterministicForSeed(t *testing.T) {
	v := make([]float64, 200)
	a, err := RandomSplits(v, 5, 5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSplits(v, 5, 5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Cut != b[i].Cut {
			t.Fatal("same seed produced different folds")
		}
	}
}
