package timeseries

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	start := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	s := New("VM2_load15", start, 5*time.Minute, []float64{0.5, 1.25, -3})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name {
		t.Errorf("name = %q", got.Name)
	}
	if !got.Start.Equal(start) {
		t.Errorf("start = %v", got.Start)
	}
	if got.Interval != s.Interval {
		t.Errorf("interval = %v", got.Interval)
	}
	if got.Len() != 3 || got.At(1) != 1.25 || got.At(2) != -3 {
		t.Errorf("values = %v", got.Values)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                            // no header
		"timestamp,x\nnot-a-time,1\n", // bad timestamp
		"timestamp,x\n1970-01-01T00:00:00Z,abc\n", // bad value
		"timestamp,x\n1970-01-01T00:00:00Z\n",     // wrong column count
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: no error for %q", i, c)
		}
	}
}

func TestMultiCSVRoundTrip(t *testing.T) {
	start := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	a := New("cpu", start, time.Minute, []float64{1, 2, 3})
	b := New("mem", start, time.Minute, []float64{10, 20, 30})

	var buf bytes.Buffer
	if err := WriteMultiCSV(&buf, []*Series{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMultiCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d series", len(got))
	}
	if got[0].Name != "cpu" || got[1].Name != "mem" {
		t.Errorf("names = %q %q", got[0].Name, got[1].Name)
	}
	if got[1].At(2) != 30 {
		t.Errorf("mem[2] = %g", got[1].At(2))
	}
	if got[0].Interval != time.Minute {
		t.Errorf("interval = %v", got[0].Interval)
	}
}

func TestWriteMultiCSVMismatchedLengths(t *testing.T) {
	a := FromValues("a", []float64{1, 2})
	b := FromValues("b", []float64{1})
	var buf bytes.Buffer
	if err := WriteMultiCSV(&buf, []*Series{a, b}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if err := WriteMultiCSV(&buf, nil); err == nil {
		t.Error("accepted empty series list")
	}
}

func TestReadMultiCSVErrors(t *testing.T) {
	if _, err := ReadMultiCSV(strings.NewReader("")); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := ReadMultiCSV(strings.NewReader("timestamp\n")); err == nil {
		t.Error("accepted single-column input")
	}
	bad := "timestamp,a\n1970-01-01T00:00:00Z,xyz\n"
	if _, err := ReadMultiCSV(strings.NewReader(bad)); err == nil {
		t.Error("accepted bad value")
	}
}
