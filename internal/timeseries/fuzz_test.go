package timeseries

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV reader and
// that everything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp,x\n1970-01-01T00:00:00Z,1\n1970-01-01T00:00:01Z,2\n")
	f.Add("timestamp,load\n2006-10-02T00:00:00Z,3.5\n")
	f.Add("")
	f.Add("timestamp,x\nnot-a-time,1\n")
	f.Add("timestamp,x\n1970-01-01T00:00:00Z,NaN\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, s); err != nil {
			t.Fatalf("accepted series failed to write: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed length: %d -> %d", s.Len(), back.Len())
		}
	})
}
