package timeseries

import (
	"errors"
	"testing"
	"time"
)

func TestResampleMean(t *testing.T) {
	s := New("x", time.Unix(0, 0).UTC(), time.Minute, []float64{1, 3, 5, 7, 9, 11})
	r, err := Resample(s, 2, nil) // nil → Mean
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 10}
	if r.Len() != 3 {
		t.Fatalf("resampled %d values", r.Len())
	}
	for i := range want {
		if r.At(i) != want[i] {
			t.Fatalf("values = %v", r.Values)
		}
	}
	if r.Interval != 2*time.Minute {
		t.Errorf("interval = %v", r.Interval)
	}
	if r.Name != "x" || !r.Start.Equal(s.Start) {
		t.Error("metadata not preserved")
	}
}

func TestResamplePartialTail(t *testing.T) {
	s := FromValues("x", []float64{2, 4, 6, 8, 10})
	r, err := Resample(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 || r.At(2) != 10 {
		t.Fatalf("values = %v", r.Values)
	}
}

func TestResampleAggregates(t *testing.T) {
	s := FromValues("x", []float64{3, 1, 4, 1, 5, 9})
	mx, err := Resample(s, 3, Max)
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0) != 4 || mx.At(1) != 9 {
		t.Errorf("max = %v", mx.Values)
	}
	mn, err := Resample(s, 3, Min)
	if err != nil {
		t.Fatal(err)
	}
	if mn.At(0) != 1 || mn.At(1) != 1 {
		t.Errorf("min = %v", mn.Values)
	}
}

func TestResampleFactorOne(t *testing.T) {
	s := FromValues("x", []float64{1, 2, 3})
	r, err := Resample(s, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		if r.At(i) != s.At(i) {
			t.Fatal("factor-1 resample changed values")
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := FromValues("x", []float64{1})
	if _, err := Resample(s, 0, nil); err == nil {
		t.Error("factor 0 accepted")
	}
	empty := FromValues("x", nil)
	if _, err := Resample(empty, 2, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty series accepted")
	}
}

func TestMaxMinHelpers(t *testing.T) {
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty Max/Min should be 0")
	}
	if Max([]float64{-5, -2, -9}) != -2 {
		t.Error("Max wrong")
	}
	if Min([]float64{5, 2, 9}) != 2 {
		t.Error("Min wrong")
	}
}
