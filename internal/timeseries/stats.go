package timeseries

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v (divisor n), matching the
// convention used for z-score normalization. Returns 0 for fewer than two
// samples.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// SampleVariance returns the unbiased sample variance (divisor n-1).
func SampleVariance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v)-1)
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// Autocovariance returns the lag-k autocovariance estimate
//
//	c_k = 1/n Σ_{t=0}^{n-k-1} (x_t - mean)(x_{t+k} - mean)
//
// using the standard biased (1/n) estimator, which guarantees that the
// resulting autocovariance sequence is positive semi-definite — a property
// Levinson–Durbin relies on.
func Autocovariance(v []float64, k int) (float64, error) {
	n := len(v)
	if k < 0 {
		return 0, fmt.Errorf("timeseries: negative lag %d", k)
	}
	if k >= n {
		return 0, fmt.Errorf("timeseries: lag %d >= series length %d: %w", k, n, ErrShort)
	}
	m := Mean(v)
	var s float64
	for t := 0; t+k < n; t++ {
		s += (v[t] - m) * (v[t+k] - m)
	}
	return s / float64(n), nil
}

// AutocovarianceSeq returns autocovariances for lags 0..maxLag.
func AutocovarianceSeq(v []float64, maxLag int) ([]float64, error) {
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		c, err := Autocovariance(v, k)
		if err != nil {
			return nil, err
		}
		out[k] = c
	}
	return out, nil
}

// Autocorrelation returns the lag-k autocorrelation c_k / c_0. For a
// zero-variance series it returns 0 for k > 0 and 1 for k == 0. An
// out-of-range lag errors regardless of the series' variance, matching
// Autocovariance.
func Autocorrelation(v []float64, k int) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("timeseries: negative lag %d", k)
	}
	if k >= len(v) {
		return 0, fmt.Errorf("timeseries: lag %d >= series length %d: %w", k, len(v), ErrShort)
	}
	c0, err := Autocovariance(v, 0)
	if err != nil {
		return 0, err
	}
	if k == 0 {
		return 1, nil
	}
	if c0 == 0 {
		return 0, nil
	}
	ck, err := Autocovariance(v, k)
	if err != nil {
		return 0, err
	}
	return ck / c0, nil
}

// Normalizer performs z-score normalization: it maps a series to zero mean
// and unit variance using coefficients fitted on training data. The paper's
// testing phase reuses training-phase coefficients ("the testing data are
// normalized using the normalization coefficient derived from the training
// phase"), which is why fit and apply are separate steps.
type Normalizer struct {
	Mean float64
	Std  float64
}

// FitNormalizer estimates normalization coefficients from v. A constant
// series (zero variance) yields Std = 1 so that Apply is the identity shift;
// this matches the degenerate-trace handling in the experiment drivers.
func FitNormalizer(v []float64) Normalizer {
	std := StdDev(v)
	if std == 0 {
		std = 1
	}
	return Normalizer{Mean: Mean(v), Std: std}
}

// Apply returns a normalized copy of v.
func (n Normalizer) Apply(v []float64) []float64 {
	out := make([]float64, len(v))
	inv := 1 / n.Std
	for i, x := range v {
		out[i] = (x - n.Mean) * inv
	}
	return out
}

// ApplyInto normalizes v into dst, reusing dst's backing array when its
// capacity suffices, and returns the slice holding the result. It is the
// allocation-free variant of Apply for steady-state hot paths; dst may be
// nil (the first call then allocates a right-sized buffer to reuse).
func (n Normalizer) ApplyInto(dst, v []float64) []float64 {
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	inv := 1 / n.Std
	for i, x := range v {
		dst[i] = (x - n.Mean) * inv
	}
	return dst
}

// ApplyValue normalizes a single value.
func (n Normalizer) ApplyValue(x float64) float64 {
	return (x - n.Mean) / n.Std
}

// Invert maps a normalized value back to the original scale.
func (n Normalizer) Invert(x float64) float64 {
	return x*n.Std + n.Mean
}

// InvertAll maps a normalized slice back to the original scale.
func (n Normalizer) InvertAll(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = n.Invert(x)
	}
	return out
}

// MSE returns the mean squared error between predictions and observations,
// the paper's headline accuracy measure (Equation 5).
func MSE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("timeseries: MSE length mismatch %d != %d", len(pred), len(obs))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// MAE returns the mean absolute error between predictions and observations.
func MAE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("timeseries: MAE length mismatch %d != %d", len(pred), len(obs))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - obs[i])
	}
	return s / float64(len(pred)), nil
}
