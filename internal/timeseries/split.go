package timeseries

import (
	"fmt"
	"math/rand"
)

// Split is a contiguous train/test partition of a series: train covers
// [0, Cut) and test covers [Cut, n).
type Split struct {
	Train []float64
	Test  []float64
	Cut   int
}

// SplitAt partitions v at index cut. Both halves alias v.
func SplitAt(v []float64, cut int) (Split, error) {
	if cut < 1 || cut >= len(v) {
		return Split{}, fmt.Errorf("timeseries: split point %d out of range (1..%d)", cut, len(v)-1)
	}
	return Split{Train: v[:cut], Test: v[cut:], Cut: cut}, nil
}

// SplitFraction partitions v so that roughly frac of the samples land in the
// training half.
func SplitFraction(v []float64, frac float64) (Split, error) {
	if frac <= 0 || frac >= 1 {
		return Split{}, fmt.Errorf("timeseries: split fraction %g out of range (0,1)", frac)
	}
	cut := int(frac * float64(len(v)))
	if cut < 1 {
		cut = 1
	}
	if cut >= len(v) {
		cut = len(v) - 1
	}
	return SplitAt(v, cut)
}

// RandomSplits generates `folds` random 50/50-style partitions of v, the
// paper's cross-validation protocol: "ten-fold cross validation were
// performed ... A time stamp was randomly chosen to divide the performance
// data ... into two parts: 50% of the data was used to train ... and the
// other 50% was used as test set" (§7.2).
//
// A literal 50/50 split leaves no freedom for a random cut, so — matching
// the intent of a randomly chosen divide timestamp — the cut is drawn
// uniformly from the middle band [minFrac, maxFrac] of the series. Each fold
// must leave both halves long enough to frame with window m, otherwise the
// fold is retried; if the series is too short to ever satisfy that, an error
// is returned.
func RandomSplits(v []float64, folds, m int, rng *rand.Rand) ([]Split, error) {
	const (
		minFrac = 0.40
		maxFrac = 0.60
	)
	n := len(v)
	lo := int(minFrac * float64(n))
	hi := int(maxFrac * float64(n))
	// Both halves must be frameable: len > m means at least m+1 samples, and
	// the training half additionally needs enough windows to be useful.
	minHalf := m + 2
	if lo < minHalf {
		lo = minHalf
	}
	if hi > n-minHalf {
		hi = n - minHalf
	}
	if lo > hi {
		return nil, fmt.Errorf("timeseries: series of %d samples too short for window %d cross-validation: %w",
			n, m, ErrShort)
	}
	splits := make([]Split, folds)
	for i := 0; i < folds; i++ {
		cut := lo + rng.Intn(hi-lo+1)
		s, err := SplitAt(v, cut)
		if err != nil {
			return nil, err
		}
		splits[i] = s
	}
	return splits, nil
}
