package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestACF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 100000)
	for i := 1; i < len(v); i++ {
		v[i] = 0.7*v[i-1] + rng.NormFloat64()
	}
	acf, err := ACF(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Errorf("acf[0] = %g", acf[0])
	}
	// AR(1): rho_k = phi^k.
	for k, want := range []float64{1, 0.7, 0.49, 0.343} {
		if math.Abs(acf[k]-want) > 0.02 {
			t.Errorf("acf[%d] = %g, want ~%g", k, acf[k], want)
		}
	}
	if _, err := ACF(v, -1); err == nil {
		t.Error("negative lag accepted")
	}
	if _, err := ACF([]float64{1, 2}, 5); !errors.Is(err, ErrShort) {
		t.Error("excess lag accepted")
	}
}

func TestPACFCutsOffForARProcess(t *testing.T) {
	// AR(2): PACF significant at lags 1-2, near zero beyond.
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 200000)
	for i := 2; i < len(v); i++ {
		v[i] = 0.5*v[i-1] + 0.3*v[i-2] + rng.NormFloat64()
	}
	pacf, err := PACF(v, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[1]-0.3) > 0.02 {
		t.Errorf("pacf[2] = %g, want ~0.3", pacf[1])
	}
	for k := 2; k < 5; k++ {
		if math.Abs(pacf[k]) > 0.02 {
			t.Errorf("pacf[%d] = %g, want ~0 beyond the AR order", k+1, pacf[k])
		}
	}
}

func TestPACFLag1IsACF1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 5000)
	for i := 1; i < len(v); i++ {
		v[i] = 0.4*v[i-1] + rng.NormFloat64()
	}
	acf, err := ACF(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	pacf, err := PACF(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[0]-acf[1]) > 1e-12 {
		t.Errorf("pacf[1] = %g != acf[1] = %g", pacf[0], acf[1])
	}
}

func TestPACFConstantSeries(t *testing.T) {
	pacf, err := PACF([]float64{5, 5, 5, 5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pacf {
		if p != 0 {
			t.Errorf("constant-series PACF = %v", pacf)
		}
	}
	if _, err := PACF([]float64{1, 2, 3}, 0); err == nil {
		t.Error("lag 0 accepted")
	}
}

func TestLjungBoxDistinguishesNoiseFromAR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	noise := make([]float64, 2000)
	ar := make([]float64, 2000)
	for i := range noise {
		noise[i] = rng.NormFloat64()
		if i > 0 {
			ar[i] = 0.6*ar[i-1] + rng.NormFloat64()
		}
	}
	_, sig, err := LjungBox(noise, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sig {
		t.Error("white noise flagged as autocorrelated")
	}
	q, sig, err := LjungBox(ar, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Errorf("AR process not flagged (Q=%g)", q)
	}
	if _, _, err := LjungBox(noise, 0); err == nil {
		t.Error("lags 0 accepted")
	}
	if _, _, err := LjungBox([]float64{1, 2}, 5); !errors.Is(err, ErrShort) {
		t.Error("excess lags accepted")
	}
}

func TestChiSquared95(t *testing.T) {
	// Known values: χ²₀.₉₅(1) ≈ 3.841, (10) ≈ 18.307, (30) ≈ 43.773.
	cases := map[int]float64{1: 3.841, 10: 18.307, 30: 43.773}
	for df, want := range cases {
		if got := chiSquared95(df); math.Abs(got-want) > 0.15 {
			t.Errorf("chi2_95(%d) = %g, want ~%g", df, got, want)
		}
	}
}

func TestLinearTrendAndDetrend(t *testing.T) {
	v := make([]float64, 50)
	for t0 := range v {
		v[t0] = 4 + 2.5*float64(t0)
	}
	a, b, err := LinearTrend(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-4) > 1e-9 || math.Abs(b-2.5) > 1e-9 {
		t.Errorf("trend = (%g, %g), want (4, 2.5)", a, b)
	}
	res, err := Detrend(v)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if math.Abs(r) > 1e-9 {
			t.Fatalf("residual[%d] = %g", i, r)
		}
	}
	if _, _, err := LinearTrend([]float64{1}); !errors.Is(err, ErrShort) {
		t.Error("single sample accepted")
	}
	// Flat series: zero slope.
	_, b, err = LinearTrend([]float64{7, 7, 7})
	if err != nil || b != 0 {
		t.Errorf("flat trend slope = %g, err %v", b, err)
	}
}

func TestDifference(t *testing.T) {
	d1, err := Difference([]float64{1, 4, 9, 16, 25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7, 9}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("d1 = %v", d1)
		}
	}
	d2, err := Difference([]float64{1, 4, 9, 16, 25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d2 {
		if x != 2 {
			t.Fatalf("d2 = %v, want all 2 (quadratic)", d2)
		}
	}
	if _, err := Difference([]float64{1, 2}, 0); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := Difference([]float64{1, 2}, 2); !errors.Is(err, ErrShort) {
		t.Error("short series accepted")
	}
	// Input untouched.
	v := []float64{1, 2, 3}
	if _, err := Difference(v, 1); err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[2] != 3 {
		t.Error("Difference mutated input")
	}
}
