package timeseries

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestNewCopiesValues(t *testing.T) {
	in := []float64{1, 2, 3}
	s := New("x", time.Unix(0, 0), time.Minute, in)
	in[0] = 99
	if s.At(0) != 1 {
		t.Error("New should copy its input")
	}
}

func TestTimeAt(t *testing.T) {
	start := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	s := New("x", start, 5*time.Minute, []float64{0, 0, 0})
	if got := s.TimeAt(2); !got.Equal(start.Add(10 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
}

func TestSlice(t *testing.T) {
	s := FromValues("x", []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.At(0) != 1 || sub.At(2) != 3 {
		t.Fatalf("Slice = %v", sub.Values)
	}
	if !sub.Start.Equal(s.TimeAt(1)) {
		t.Error("Slice did not advance start time")
	}
	if _, err := s.Slice(3, 2); err == nil {
		t.Error("Slice accepted inverted bounds")
	}
	if _, err := s.Slice(0, 6); err == nil {
		t.Error("Slice accepted out-of-range bound")
	}
}

func TestPoints(t *testing.T) {
	s := FromValues("x", []float64{7, 8})
	pts := s.Points()
	if len(pts) != 2 || pts[1].Value != 8 {
		t.Fatalf("Points = %v", pts)
	}
	if !pts[1].Time.After(pts[0].Time) {
		t.Error("Points timestamps not increasing")
	}
}

func TestIsConstant(t *testing.T) {
	if !FromValues("x", []float64{2, 2, 2}).IsConstant(0) {
		t.Error("constant series not detected")
	}
	if FromValues("x", []float64{2, 2.5}).IsConstant(0.1) {
		t.Error("non-constant series detected as constant")
	}
	if !FromValues("x", nil).IsConstant(0) {
		t.Error("empty series should be constant")
	}
}

func TestValidate(t *testing.T) {
	if err := FromValues("x", []float64{1, 2}).Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	if err := FromValues("x", []float64{1, math.NaN()}).Validate(); err == nil {
		t.Error("NaN not rejected")
	}
	if err := FromValues("x", []float64{math.Inf(-1)}).Validate(); err == nil {
		t.Error("Inf not rejected")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromValues("x", []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 42
	if s.At(0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestFrameSeries(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4}
	frames, err := FrameSeries(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	// Frame 0: window [0,1] target 2; frame 2: window [2,3] target 4.
	if frames[0].Target != 2 || frames[2].Target != 4 {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[1].Window[0] != 1 || frames[1].Window[1] != 2 {
		t.Fatalf("frame 1 window = %v", frames[1].Window)
	}
	if frames[1].Index != 1 {
		t.Fatalf("frame 1 index = %d", frames[1].Index)
	}
}

func TestFrameSeriesErrors(t *testing.T) {
	if _, err := FrameSeries([]float64{1, 2}, 0); err == nil {
		t.Error("accepted window 0")
	}
	if _, err := FrameSeries([]float64{1, 2}, 2); !errors.Is(err, ErrShort) {
		t.Errorf("too-short series err = %v, want ErrShort", err)
	}
}

func TestWindowsAndTargets(t *testing.T) {
	frames, err := FrameSeries([]float64{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := Windows(frames)
	tg := Targets(frames)
	if len(w) != 2 || len(tg) != 2 {
		t.Fatalf("windows %d targets %d, want 2/2", len(w), len(tg))
	}
	if tg[0] != 2 || tg[1] != 3 {
		t.Fatalf("targets = %v", tg)
	}
}
