package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func diskFile(t *testing.T, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "victim")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTruncateTail(t *testing.T) {
	path := diskFile(t, []byte("0123456789"))
	if err := TruncateTail(path, 4); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012345" {
		t.Fatalf("after truncation: %q", got)
	}
	// Over-truncation empties the file instead of failing.
	if err := TruncateTail(path, 100); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); len(got) != 0 {
		t.Fatalf("expected empty file, got %q", got)
	}
	if err := TruncateTail(path, -1); err == nil {
		t.Fatal("negative truncation accepted")
	}
	if err := TruncateTail(filepath.Join(t.TempDir(), "missing"), 1); err == nil {
		t.Fatal("truncating a missing file succeeded")
	}
}

func TestFlipBit(t *testing.T) {
	path := diskFile(t, []byte{0x00, 0xFF, 0x0F})
	if err := FlipBit(path, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, -1, 7); err != nil { // last byte via negative offset
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x01, 0xFF, 0x8F}
	if !bytes.Equal(got, want) {
		t.Fatalf("got % x, want % x", got, want)
	}
	// Flipping the same bit twice restores the original byte.
	if err := FlipBit(path, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); got[0] != 0x00 {
		t.Fatalf("double flip did not restore: %x", got[0])
	}
	if err := FlipBit(path, 3, 0); err == nil {
		t.Fatal("offset past EOF accepted")
	}
	if err := FlipBit(path, -4, 0); err == nil {
		t.Fatal("negative offset before start accepted")
	}
	if err := FlipBit(path, 0, 8); err == nil {
		t.Fatal("bit index 8 accepted")
	}
}

func TestTornWrite(t *testing.T) {
	path := diskFile(t, []byte("head"))
	if err := TornWrite(path, []byte("record"), 3); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "headrec" {
		t.Fatalf("after torn write: %q", got)
	}
	if err := TornWrite(path, []byte("x"), 2); err == nil {
		t.Fatal("keep > len accepted")
	}
	if err := TornWrite(path, []byte("x"), -1); err == nil {
		t.Fatal("negative keep accepted")
	}
}
