package faults

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

var epoch = time.Date(2006, 10, 2, 0, 0, 0, 0, time.UTC)

// constSampler reports value 10 for every stream at every time.
func constSampler(v float64) monitor.Sampler {
	return func(vmtrace.VMID, vmtrace.Metric, time.Time) (float64, bool) { return v, true }
}

func TestDropoutDeterministicAndRateBounded(t *testing.T) {
	inj := &Dropout{Seed: 42, P: 0.2}
	s := Wrap(constSampler(10), inj)

	dropped, n := 0, 5000
	var firstRun []bool
	for i := 0; i < n; i++ {
		ts := epoch.Add(time.Duration(i) * time.Minute)
		_, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, ts)
		firstRun = append(firstRun, ok)
		if !ok {
			dropped++
		}
	}
	rate := float64(dropped) / float64(n)
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("drop rate %.3f, want ~0.2", rate)
	}
	// Same seed → identical schedule, regardless of replay order.
	for i := n - 1; i >= 0; i-- {
		ts := epoch.Add(time.Duration(i) * time.Minute)
		if _, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, ts); ok != firstRun[i] {
			t.Fatalf("sample %d: replay ok=%v, first run ok=%v", i, ok, firstRun[i])
		}
	}
	// Different seed → different schedule.
	other := Wrap(constSampler(10), &Dropout{Seed: 43, P: 0.2})
	same := 0
	for i := 0; i < n; i++ {
		ts := epoch.Add(time.Duration(i) * time.Minute)
		if _, ok := other(vmtrace.VM2, vmtrace.CPUUsedSec, ts); ok == firstRun[i] {
			same++
		}
	}
	if same == n {
		t.Error("seed 43 produced the identical schedule as seed 42")
	}
}

func TestDropoutStreamSelection(t *testing.T) {
	set, err := ParseStreams("VM3/*")
	if err != nil {
		t.Fatal(err)
	}
	s := Wrap(constSampler(10), &Dropout{Seed: 1, P: 1, Streams: set})
	if _, ok := s(vmtrace.VM3, vmtrace.CPUUsedSec, epoch); ok {
		t.Error("VM3 sample survived a p=1 dropout")
	}
	if _, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, epoch); !ok {
		t.Error("VM2 sample dropped by a VM3-only fault")
	}
}

func TestNaNBurstWindows(t *testing.T) {
	inj := &NaNBurst{Seed: 1, Epoch: epoch, Start: 10 * time.Minute, Len: 5 * time.Minute, Period: time.Hour}
	s := Wrap(constSampler(10), inj)
	cases := []struct {
		at   time.Duration
		want bool // NaN expected
	}{
		{0, false},
		{10 * time.Minute, true},
		{14 * time.Minute, true},
		{15 * time.Minute, false},
		{time.Hour + 12*time.Minute, true}, // periodic repeat
		{2*time.Hour + 20*time.Minute, false},
	}
	for _, c := range cases {
		v, ok := s(vmtrace.VM2, vmtrace.MemSize, epoch.Add(c.at))
		if !ok {
			t.Fatalf("t=%v: sample not ok", c.at)
		}
		if math.IsNaN(v) != c.want {
			t.Errorf("t=%v: NaN=%v, want %v", c.at, math.IsNaN(v), c.want)
		}
	}
}

func TestSpikeMagnifies(t *testing.T) {
	s := Wrap(constSampler(10), &Spike{Seed: 7, P: 1, Mag: 4, Add: 2})
	if v, _ := s(vmtrace.VM2, vmtrace.NIC1RX, epoch); v != 42 {
		t.Errorf("spiked value = %g, want 42", v)
	}
	// Spikes never resurrect missing samples.
	missing := func(vmtrace.VMID, vmtrace.Metric, time.Time) (float64, bool) { return 0, false }
	if _, ok := Wrap(missing, &Spike{Seed: 7, P: 1, Mag: 4})(vmtrace.VM2, vmtrace.NIC1RX, epoch); ok {
		t.Error("spike marked a missing sample as ok")
	}
}

func TestStuckAtHoldsPreWindowValue(t *testing.T) {
	inj := &StuckAt{Seed: 1, Epoch: epoch, Start: 10 * time.Minute, Len: 10 * time.Minute}
	ramp := func(vm vmtrace.VMID, m vmtrace.Metric, ts time.Time) (float64, bool) {
		return ts.Sub(epoch).Minutes(), true
	}
	s := Wrap(ramp, inj)
	// Feed pre-window samples so the injector has a held value.
	for i := 0; i < 10; i++ {
		s(vmtrace.VM4, vmtrace.VD1Read, epoch.Add(time.Duration(i)*time.Minute))
	}
	for i := 10; i < 20; i++ {
		v, ok := s(vmtrace.VM4, vmtrace.VD1Read, epoch.Add(time.Duration(i)*time.Minute))
		if !ok || v != 9 {
			t.Errorf("minute %d: v=%g ok=%v, want held value 9", i, v, ok)
		}
	}
	// After the window the live ramp resumes.
	if v, _ := s(vmtrace.VM4, vmtrace.VD1Read, epoch.Add(25*time.Minute)); v != 25 {
		t.Errorf("post-window v=%g, want 25", v)
	}
}

func TestClockGapSilencesSpan(t *testing.T) {
	inj := &ClockGap{Seed: 1, Epoch: epoch, Start: time.Hour, Len: 30 * time.Minute}
	s := Wrap(constSampler(1), inj)
	if _, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, epoch.Add(70*time.Minute)); ok {
		t.Error("sample inside the gap was not silenced")
	}
	if _, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, epoch.Add(2*time.Hour)); !ok {
		t.Error("sample after the gap was silenced")
	}
}

func TestInjectorsCompose(t *testing.T) {
	spike := &Spike{Seed: 1, P: 1, Mag: 3}
	gap := &ClockGap{Seed: 1, Epoch: epoch, Start: 0, Len: time.Minute}
	s := Wrap(constSampler(5), spike, gap)
	if _, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, epoch.Add(30*time.Second)); ok {
		t.Error("gap did not silence a spiked sample")
	}
	if v, ok := s(vmtrace.VM2, vmtrace.CPUUsedSec, epoch.Add(5*time.Minute)); !ok || v != 15 {
		t.Errorf("outside gap: v=%g ok=%v, want 15 true", v, ok)
	}
}

func TestInjectValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	out, ok := InjectValues(vals, vmtrace.VM2, vmtrace.CPUUsedSec, epoch, time.Minute,
		&Spike{Seed: 9, P: 1, Mag: 2})
	for i := range vals {
		if !ok[i] || out[i] != vals[i]*2 {
			t.Errorf("sample %d: out=%g ok=%v", i, out[i], ok[i])
		}
	}
	if vals[0] != 1 {
		t.Error("InjectValues mutated its input")
	}
}

func TestParseStreams(t *testing.T) {
	set, err := ParseStreams("VM3/*|VM2/CPU_usedsec")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		vm   vmtrace.VMID
		m    vmtrace.Metric
		want bool
	}{
		{vmtrace.VM3, vmtrace.MemSize, true},
		{vmtrace.VM2, vmtrace.CPUUsedSec, true},
		{vmtrace.VM2, vmtrace.MemSize, false},
		{vmtrace.VM4, vmtrace.CPUUsedSec, false},
	}
	for _, c := range cases {
		if got := set.Matches(c.vm, c.m); got != c.want {
			t.Errorf("Matches(%s, %s) = %v, want %v", c.vm, c.m, got, c.want)
		}
	}
	if _, err := ParseStreams("VM3"); err == nil {
		t.Error("ParseStreams accepted a pattern without a metric")
	}
	// The zero set matches everything.
	var all StreamSet
	if !all.Matches(vmtrace.VM5, vmtrace.VD2Write) {
		t.Error("zero StreamSet did not match")
	}
}

func TestParseSpec(t *testing.T) {
	injs, err := ParseSpec(
		"spike:p=0.02,mag=40,on=VM3/CPU_usedsec|VM3/NIC1_received; dropout:p=0.05,on=VM3/*;nanburst:period=6h,len=50m",
		2007, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 3 {
		t.Fatalf("parsed %d injectors, want 3", len(injs))
	}
	wantKinds := []string{"spike", "dropout", "nanburst"}
	for i, inj := range injs {
		if inj.Name() != wantKinds[i] {
			t.Errorf("injector %d: kind %q, want %q", i, inj.Name(), wantKinds[i])
		}
	}
	sp, ok := injs[0].(*Spike)
	if !ok || sp.P != 0.02 || sp.Mag != 40 {
		t.Errorf("spike = %+v, want p=0.02 mag=40", injs[0])
	}
	nb := injs[2].(*NaNBurst)
	if nb.Period != 6*time.Hour || nb.Len != 50*time.Minute || !nb.Epoch.Equal(epoch) {
		t.Errorf("nanburst = %+v", nb)
	}

	if got, err := ParseSpec("", 1, epoch); err != nil || got != nil {
		t.Errorf("empty spec: injs=%v err=%v", got, err)
	}
	bad := []string{
		"tsunami:p=1",        // unknown kind
		"dropout:mag=2",      // missing p
		"dropout:p=high",     // non-numeric
		"nanburst:len=fifty", // bad duration
		"nanburst:period=1h", // missing len
		"spike:p=0.1,on=VM3", // bad stream pattern
		"dropout:p",          // not key=value
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1, epoch); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %q: err = %v, want ErrBadSpec", spec, err)
		}
	}
}
