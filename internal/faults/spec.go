package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrBadSpec is returned by ParseSpec for malformed fault specifications.
var ErrBadSpec = errors.New("faults: invalid fault spec")

// ParseSpec parses a compact fault-injection specification into injectors.
// The grammar, designed for a single command-line flag, is
//
//	spec   := clause (';' clause)*
//	clause := kind ':' param (',' param)*
//	param  := key '=' value
//
// Kinds and their parameters (durations use Go syntax, e.g. "45m"):
//
//	dropout   p=<prob>                          [on=<streams>]
//	spike     p=<prob> [mag=<factor>] [add=<v>] [on=<streams>]
//	nanburst  len=<dur> [at=<dur>] [period=<dur>] [on=<streams>]
//	stuck     len=<dur> [at=<dur>] [period=<dur>] [on=<streams>]
//	gap       len=<dur> [at=<dur>] [period=<dur>] [on=<streams>]
//
// "at" offsets the first fault window from epoch (default 0), "period"
// repeats it (default: once). "on" selects streams as '|'-separated
// VM/metric patterns with '*' wildcards (default: every stream), e.g.
//
//	spike:p=0.02,mag=40,on=VM3/CPU_usedsec|VM3/NIC1_*;dropout:p=0.05,on=VM3/*
//
// seed derives every injector's deterministic schedule; epoch anchors the
// window offsets (use the monitoring agent's start time).
func ParseSpec(spec string, seed int64, epoch time.Time) ([]Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var injs []Injector
	for i, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		// Offset each clause's seed so identical fault kinds on the same
		// stream still draw independent schedules.
		inj, err := parseClause(clause, seed+int64(i)*7919, epoch)
		if err != nil {
			return nil, err
		}
		injs = append(injs, inj)
	}
	return injs, nil
}

func parseClause(clause string, seed int64, epoch time.Time) (Injector, error) {
	kind, rest, _ := strings.Cut(clause, ":")
	kind = strings.TrimSpace(kind)
	p, err := parseParams(kind, rest)
	if err != nil {
		return nil, err
	}
	streams, err := ParseStreams(p.str("on"))
	if err != nil {
		return nil, err
	}

	var inj Injector
	switch kind {
	case "dropout":
		inj = &Dropout{Seed: seed, Streams: streams, P: p.num("p", true)}
	case "spike":
		sp := &Spike{Seed: seed, Streams: streams, P: p.num("p", true), Mag: 1, Add: p.num("add", false)}
		if p.has("mag") {
			sp.Mag = p.num("mag", false)
		}
		inj = sp
	case "nanburst":
		inj = &NaNBurst{Seed: seed, Streams: streams, Epoch: epoch,
			Start: p.dur("at"), Len: p.dur("len"), Period: p.dur("period")}
		p.requireDur("len")
	case "stuck":
		inj = &StuckAt{Seed: seed, Streams: streams, Epoch: epoch,
			Start: p.dur("at"), Len: p.dur("len"), Period: p.dur("period")}
		p.requireDur("len")
	case "gap":
		inj = &ClockGap{Seed: seed, Streams: streams, Epoch: epoch,
			Start: p.dur("at"), Len: p.dur("len"), Period: p.dur("period")}
		p.requireDur("len")
	default:
		return nil, fmt.Errorf("%w: unknown fault kind %q", ErrBadSpec, kind)
	}
	if p.err != nil {
		return nil, p.err
	}
	return inj, nil
}

// clauseParams accumulates the first parse error so the clause builders
// above stay flat.
type clauseParams struct {
	kind string
	m    map[string]string
	err  error
}

func parseParams(kind, s string) (*clauseParams, error) {
	p := &clauseParams{kind: kind, m: map[string]string{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found || key == "" || val == "" {
			return nil, fmt.Errorf("%w: %s: parameter %q (want key=value)", ErrBadSpec, kind, kv)
		}
		p.m[key] = val
	}
	return p, nil
}

func (p *clauseParams) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("%w: %s: %s", ErrBadSpec, p.kind, fmt.Sprintf(format, args...))
	}
}

func (p *clauseParams) has(key string) bool { _, ok := p.m[key]; return ok }

func (p *clauseParams) str(key string) string { return p.m[key] }

func (p *clauseParams) num(key string, required bool) float64 {
	v, ok := p.m[key]
	if !ok {
		if required {
			p.fail("missing required parameter %q", key)
		}
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail("%s=%q is not a number", key, v)
	}
	return f
}

func (p *clauseParams) dur(key string) time.Duration {
	v, ok := p.m[key]
	if !ok {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.fail("%s=%q is not a duration", key, v)
	}
	return d
}

func (p *clauseParams) requireDur(key string) {
	if !p.has(key) {
		p.fail("missing required parameter %q", key)
	}
}
