package faults

import (
	"fmt"
	"os"
)

// Disk fault injectors for durability testing: deliberate corruption of
// snapshot and write-ahead-log files so recovery paths (checksum
// verification, torn-tail truncation, quarantine) can be exercised without
// an actual power cut. They complement the stream injectors above, which
// corrupt data in flight; these corrupt data at rest.

// TruncateTail removes the last n bytes of the file, simulating a snapshot
// or log cut short by a crash mid-write. Truncating more bytes than the file
// holds leaves an empty file.
func TruncateTail(path string, n int64) error {
	if n < 0 {
		return fmt.Errorf("faults: negative truncation %d", n)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("faults: truncate tail: %w", err)
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("faults: truncate tail: %w", err)
	}
	return nil
}

// FlipBit inverts one bit of the file, simulating silent media corruption.
// offset is the byte position; a negative offset counts back from the end of
// the file (-1 is the last byte). bit selects the bit within that byte
// (0 = least significant).
func FlipBit(path string, offset int64, bit uint) error {
	if bit > 7 {
		return fmt.Errorf("faults: bit index %d > 7", bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faults: flip bit: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("faults: flip bit: %w", err)
	}
	if offset < 0 {
		offset += info.Size()
	}
	if offset < 0 || offset >= info.Size() {
		return fmt.Errorf("faults: flip bit: offset %d outside file of %d bytes", offset, info.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return fmt.Errorf("faults: flip bit: %w", err)
	}
	b[0] ^= 1 << bit
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return fmt.Errorf("faults: flip bit: %w", err)
	}
	return f.Sync()
}

// TornWrite appends only the first keep bytes of record to the file,
// simulating a crash in the middle of an append: the tail of the file holds
// a partial record that a recovering reader must detect and discard.
func TornWrite(path string, record []byte, keep int) error {
	if keep < 0 || keep > len(record) {
		return fmt.Errorf("faults: torn write keeps %d of %d bytes", keep, len(record))
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("faults: torn write: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(record[:keep]); err != nil {
		return fmt.Errorf("faults: torn write: %w", err)
	}
	return f.Sync()
}
