// Package faults injects composable, deterministic faults into the
// monitoring pipeline. Each Injector rewrites the raw samples of selected
// (VM, metric) streams before they reach the RRD — dropouts, NaN bursts,
// value spikes, stuck-at faults, and clock gaps — so that chaos tests can
// drive the prediction pipeline through realistic sensor failure modes.
//
// All randomness is derived by hashing (seed, vm, metric, timestamp), never
// from shared RNG state, so an injection schedule is a pure function of the
// seed: replaying a run with the same seed injects exactly the same faults
// regardless of sampling order or concurrency.
package faults

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// Sample is one raw measurement passing through an injector. ok=false marks
// the sample as missing (the monitoring agent records it as unknown).
type Sample struct {
	Value float64
	OK    bool
}

// Injector rewrites one raw sample of a (vm, metric) stream at time t.
// Injectors compose: Wrap applies them in order, each seeing the previous
// one's output.
type Injector interface {
	// Name returns the fault kind ("dropout", "spike", ...).
	Name() string
	// Apply rewrites the sample. Implementations must be deterministic in
	// (vm, metric, t) and safe for concurrent use.
	Apply(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time, s Sample) Sample
}

// Wrap chains injectors onto a sampler: each raw sample is passed through
// every injector in order. With no injectors the sampler is returned as is.
func Wrap(inner monitor.Sampler, injs ...Injector) monitor.Sampler {
	if len(injs) == 0 {
		return inner
	}
	return func(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time) (float64, bool) {
		v, ok := inner(vm, metric, t)
		s := Sample{Value: v, OK: ok}
		for _, inj := range injs {
			s = inj.Apply(vm, metric, t, s)
		}
		return s.Value, s.OK
	}
}

// InjectValues applies injectors to a plain value slice, treating index i as
// time epoch+i·step on a synthetic stream. It is a convenience for unit
// tests that feed predictors directly, without a monitoring agent. The
// returned mask reports which samples survived (ok).
func InjectValues(values []float64, vm vmtrace.VMID, metric vmtrace.Metric, epoch time.Time, step time.Duration, injs ...Injector) ([]float64, []bool) {
	out := make([]float64, len(values))
	ok := make([]bool, len(values))
	for i, v := range values {
		s := Sample{Value: v, OK: true}
		t := epoch.Add(time.Duration(i) * step)
		for _, inj := range injs {
			s = inj.Apply(vm, metric, t, s)
		}
		out[i], ok[i] = s.Value, s.OK
	}
	return out, ok
}

// StreamSet selects the (VM, metric) streams a fault applies to. The zero
// value matches every stream.
type StreamSet struct {
	// streams maps "VM/metric" with "*" wildcards on either side.
	streams []streamPattern
}

type streamPattern struct {
	vm, metric string // "*" = any
}

// ParseStreams parses a '|'-separated list of VM/metric patterns, e.g.
// "VM3/*|VM2/CPU_usedsec". An empty string matches every stream.
func ParseStreams(spec string) (StreamSet, error) {
	var set StreamSet
	if spec == "" {
		return set, nil
	}
	for _, part := range strings.Split(spec, "|") {
		part = strings.TrimSpace(part)
		vm, metric, found := strings.Cut(part, "/")
		if !found || vm == "" || metric == "" {
			return StreamSet{}, fmt.Errorf("%w: stream %q: want VM/metric (\"*\" wildcards allowed)", ErrBadSpec, part)
		}
		set.streams = append(set.streams, streamPattern{vm: vm, metric: metric})
	}
	return set, nil
}

// Matches reports whether the set selects the given stream.
func (s StreamSet) Matches(vm vmtrace.VMID, metric vmtrace.Metric) bool {
	if len(s.streams) == 0 {
		return true
	}
	for _, p := range s.streams {
		if (p.vm == "*" || p.vm == string(vm)) && (p.metric == "*" || p.metric == string(metric)) {
			return true
		}
	}
	return false
}

// String renders the set back into ParseStreams syntax ("" = all streams).
func (s StreamSet) String() string {
	parts := make([]string, len(s.streams))
	for i, p := range s.streams {
		parts[i] = p.vm + "/" + p.metric
	}
	return strings.Join(parts, "|")
}

// hash01 maps (seed, vm, metric, t) to a uniform float64 in [0, 1) via a
// 64-bit FNV-1a hash with an avalanche finalizer. It is the package's only
// source of randomness, making every schedule a pure function of the seed.
func hash01(seed int64, vm vmtrace.VMID, metric vmtrace.Metric, t int64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(vm); i++ {
		h ^= uint64(vm[i])
		h *= prime64
	}
	for i := 0; i < len(metric); i++ {
		h ^= uint64(metric[i])
		h *= prime64
	}
	mix(uint64(t))
	// splitmix64 finalizer for avalanche.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// inWindow reports whether t falls inside a periodic fault window of the
// given length, anchored at epoch+start. period <= 0 means the window
// occurs once.
func inWindow(t, epoch time.Time, start, length, period time.Duration) bool {
	if length <= 0 {
		return false
	}
	off := t.Sub(epoch) - start
	if off < 0 {
		return false
	}
	if period > 0 {
		off %= period
	}
	return off < length
}

// Dropout drops each raw sample independently with probability P, modelling
// a lossy collection path.
type Dropout struct {
	Seed    int64
	Streams StreamSet
	P       float64
}

// Name implements Injector.
func (d *Dropout) Name() string { return "dropout" }

// Apply implements Injector.
func (d *Dropout) Apply(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time, s Sample) Sample {
	if !d.Streams.Matches(vm, metric) {
		return s
	}
	if hash01(d.Seed, vm, metric, t.Unix()) < d.P {
		s.OK = false
	}
	return s
}

// NaNBurst poisons every sample inside periodic windows with NaN values —
// a sensor that reports garbage rather than going silent. The monitoring
// agent records NaN samples as unknown, so prolonged bursts consolidate
// into unknown RRD rows.
type NaNBurst struct {
	Seed    int64
	Streams StreamSet
	Epoch   time.Time
	Start   time.Duration // offset of the first burst from Epoch
	Len     time.Duration // burst length
	Period  time.Duration // burst repetition period (<= 0: once)
}

// Name implements Injector.
func (n *NaNBurst) Name() string { return "nanburst" }

// Apply implements Injector.
func (n *NaNBurst) Apply(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time, s Sample) Sample {
	if !n.Streams.Matches(vm, metric) {
		return s
	}
	if inWindow(t, n.Epoch, n.Start, n.Len, n.Period) {
		s.Value = math.NaN()
	}
	return s
}

// Spike multiplies each sample by Mag (and adds Add) independently with
// probability P — a counter glitch or measurement spike.
type Spike struct {
	Seed    int64
	Streams StreamSet
	P       float64
	Mag     float64 // multiplicative factor (1 = no-op)
	Add     float64 // additive offset, applied after Mag
}

// Name implements Injector.
func (sp *Spike) Name() string { return "spike" }

// Apply implements Injector.
func (sp *Spike) Apply(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time, s Sample) Sample {
	if !sp.Streams.Matches(vm, metric) || !s.OK {
		return s
	}
	if hash01(sp.Seed+1, vm, metric, t.Unix()) < sp.P {
		s.Value = s.Value*sp.Mag + sp.Add
	}
	return s
}

// StuckAt freezes selected streams inside periodic windows: every sample
// reports the last value seen before the window opened (or the first
// in-window value when none precedes it) — a wedged sensor that keeps
// reporting a stale reading.
type StuckAt struct {
	Seed    int64
	Streams StreamSet
	Epoch   time.Time
	Start   time.Duration
	Len     time.Duration
	Period  time.Duration // <= 0: once

	mu   sync.Mutex
	held map[string]float64 // per-stream last pre-window value
}

// Name implements Injector.
func (st *StuckAt) Name() string { return "stuck" }

// Apply implements Injector.
func (st *StuckAt) Apply(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time, s Sample) Sample {
	if !st.Streams.Matches(vm, metric) {
		return s
	}
	key := string(vm) + "/" + string(metric)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.held == nil {
		st.held = make(map[string]float64)
	}
	if !inWindow(t, st.Epoch, st.Start, st.Len, st.Period) {
		if s.OK {
			st.held[key] = s.Value
		}
		return s
	}
	if held, seen := st.held[key]; seen {
		s.Value, s.OK = held, true
	} else if s.OK {
		st.held[key] = s.Value
	}
	return s
}

// ClockGap silences selected streams entirely inside periodic windows — a
// crashed monitoring agent or a clock jump that loses a span of samples.
// Unlike Dropout the loss is contiguous, long enough to exceed the RRD
// heartbeat and consolidate into unknown rows.
type ClockGap struct {
	Seed    int64
	Streams StreamSet
	Epoch   time.Time
	Start   time.Duration
	Len     time.Duration
	Period  time.Duration // <= 0: once
}

// Name implements Injector.
func (g *ClockGap) Name() string { return "gap" }

// Apply implements Injector.
func (g *ClockGap) Apply(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time, s Sample) Sample {
	if !g.Streams.Matches(vm, metric) {
		return s
	}
	if inWindow(t, g.Epoch, g.Start, g.Len, g.Period) {
		s.OK = false
	}
	return s
}
