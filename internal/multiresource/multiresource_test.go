package multiresource

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/acis-lab/larpredictor/internal/predictors"
)

// coupledSeries generates (cpu, mem) where cpu_t depends on mem_{t-1}:
// mem is an AR(1) process and cpu = own-AR + gamma·mem_{t-1} + noise.
func coupledSeries(seed int64, n int, gamma float64) (cpu, mem []float64) {
	rng := rand.New(rand.NewSource(seed))
	cpu = make([]float64, n)
	mem = make([]float64, n)
	for i := 1; i < n; i++ {
		mem[i] = 0.8*mem[i-1] + rng.NormFloat64()
		cpu[i] = 0.4*cpu[i-1] + gamma*mem[i-1] + 0.5*rng.NormFloat64()
	}
	return cpu, mem
}

func testMSE(t *testing.T, m *Model, cpu, mem []float64, start int) float64 {
	t.Helper()
	var ss float64
	cnt := 0
	for i := start; i < len(cpu)-1; i++ {
		pred, err := m.Predict(cpu[:i+1], mem[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		d := pred - cpu[i+1]
		ss += d * d
		cnt++
	}
	return ss / float64(cnt)
}

func TestCrossResourceBeatsSingleResourceWhenCoupled(t *testing.T) {
	cpu, mem := coupledSeries(1, 4000, 0.7)
	half := len(cpu) / 2

	cross := New(3, 3)
	if err := cross.Fit(cpu[:half], mem[:half]); err != nil {
		t.Fatal(err)
	}
	single := New(3, 0)
	if err := single.Fit(cpu[:half], mem[:half]); err != nil {
		t.Fatal(err)
	}

	crossMSE := testMSE(t, cross, cpu, mem, half)
	singleMSE := testMSE(t, single, cpu, mem, half)
	if crossMSE >= singleMSE {
		t.Errorf("cross-resource MSE %.4f not below single-resource %.4f on coupled series",
			crossMSE, singleMSE)
	}
	if g := cross.CrossGain(); g < 0.2 {
		t.Errorf("cross gain %.3f too small for strongly coupled series", g)
	}
}

func TestCrossResourceHarmlessWhenUncoupled(t *testing.T) {
	cpu, _ := coupledSeries(2, 4000, 0) // gamma = 0: no coupling
	rng := rand.New(rand.NewSource(3))
	noise := make([]float64, len(cpu))
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	half := len(cpu) / 2

	cross := New(3, 3)
	if err := cross.Fit(cpu[:half], noise[:half]); err != nil {
		t.Fatal(err)
	}
	single := New(3, 0)
	if err := single.Fit(cpu[:half], noise[:half]); err != nil {
		t.Fatal(err)
	}
	crossMSE := testMSE(t, cross, cpu, noise, half)
	singleMSE := testMSE(t, single, cpu, noise, half)
	// The useless auxiliary must cost at most a small overfitting penalty.
	if crossMSE > 1.05*singleMSE {
		t.Errorf("uncoupled auxiliary cost too much: %.4f vs %.4f", crossMSE, singleMSE)
	}
	if g := cross.CrossGain(); g > 0.25 {
		t.Errorf("cross gain %.3f on pure-noise auxiliary", g)
	}
}

func TestCrossBeatsYuleWalkerAROnCoupledSeries(t *testing.T) {
	// The headline comparison from Liang et al.: multi-resource beats the
	// standard single-series AR when cross-correlation is real.
	cpu, mem := coupledSeries(4, 4000, 0.7)
	half := len(cpu) / 2

	cross := New(3, 3)
	if err := cross.Fit(cpu[:half], mem[:half]); err != nil {
		t.Fatal(err)
	}
	ar := predictors.NewAR(3)
	if err := ar.Fit(cpu[:half]); err != nil {
		t.Fatal(err)
	}

	var crossSS, arSS float64
	cnt := 0
	for i := half; i < len(cpu)-1; i++ {
		cp, err := cross.Predict(cpu[:i+1], mem[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		ap, err := ar.Predict(cpu[i-2 : i+1])
		if err != nil {
			t.Fatal(err)
		}
		target := cpu[i+1]
		crossSS += (cp - target) * (cp - target)
		arSS += (ap - target) * (ap - target)
		cnt++
	}
	if crossSS >= arSS {
		t.Errorf("cross-resource MSE %.4f not below Yule-Walker AR %.4f",
			crossSS/float64(cnt), arSS/float64(cnt))
	}
}

func TestFitValidation(t *testing.T) {
	m := New(2, 1)
	if err := m.Fit([]float64{1, 2, 3}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Error("length mismatch accepted")
	}
	if _, err := m.Predict([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted Predict did not error")
	}
}

func TestFallbackOnShortData(t *testing.T) {
	m := New(3, 3)
	if err := m.Fit([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict([]float64{5, 6, 7}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("fallback = %g, want LAST", got)
	}
	if m.CrossGain() != 0 {
		t.Error("fallback model claims cross gain")
	}
}

func TestPredictWindowTooShort(t *testing.T) {
	cpu, mem := coupledSeries(5, 400, 0.5)
	m := New(3, 3)
	if err := m.Fit(cpu, mem); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(cpu[:2], mem[:10]); !errors.Is(err, ErrBadInput) {
		t.Error("short target window accepted")
	}
	if _, err := m.Predict(cpu[:10], mem[:2]); !errors.Is(err, ErrBadInput) {
		t.Error("short aux window accepted")
	}
}

func TestCollinearAuxiliaryIsStable(t *testing.T) {
	// aux == target: perfectly collinear design. The ridge epsilon must
	// keep the solve stable and predictions finite.
	cpu, _ := coupledSeries(6, 2000, 0)
	m := New(3, 3)
	if err := m.Fit(cpu, cpu); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(cpu[:100], cpu[:100])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Fatalf("collinear prediction = %g", pred)
	}
}

func TestCrossCorrelation(t *testing.T) {
	// x leads z by exactly one step: corr(z_t, x_{t-1}) = 1.
	x := make([]float64, 100)
	z := make([]float64, 100)
	rng := rand.New(rand.NewSource(7))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := 1; i < len(z); i++ {
		z[i] = x[i-1]
	}
	rho, err := CrossCorrelation(z[1:], x[1:], 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.95 {
		t.Errorf("lead-lag cross-correlation = %g, want ~1", rho)
	}
	rho0, err := CrossCorrelation(z[1:], x[1:], 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho0) > 0.3 {
		t.Errorf("contemporaneous correlation = %g, want ~0", rho0)
	}
	// Errors.
	if _, err := CrossCorrelation([]float64{1}, []float64{1, 2}, 0); !errors.Is(err, ErrBadInput) {
		t.Error("length mismatch accepted")
	}
	if _, err := CrossCorrelation(z, x, 1000); !errors.Is(err, ErrBadInput) {
		t.Error("excess lag accepted")
	}
	// Constant series: zero by convention.
	rho, err = CrossCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3}, 0)
	if err != nil || rho != 0 {
		t.Errorf("constant-series correlation = %g, err %v", rho, err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct{ p, q int }{{0, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.p, c.q)
				}
			}()
			New(c.p, c.q)
		}()
	}
}
