// Package multiresource implements the multi-resource prediction model of
// Liang, Nahrstedt & Zhou that the paper's related work describes (§2): a
// predictor that "uses both the autocorrelation of the CPU load and the
// cross correlation between the CPU load and free memory to achieve higher
// CPU load prediction accuracy".
//
// The model is a two-series linear autoregression fitted by least squares:
//
//	ẑ_t = μ_z + Σ_{i=1..p} a_i (z_{t-i} − μ_z) + Σ_{j=1..q} b_j (x_{t-j} − μ_x)
//
// where z is the target resource and x the auxiliary resource. With q = 0 it
// degenerates to ordinary AR(p); CrossGain reports how much of the fitted
// weight lives on the auxiliary lags, and the tests verify the model beats
// single-resource AR exactly when real cross-correlation exists.
package multiresource

import (
	"errors"
	"fmt"

	"github.com/acis-lab/larpredictor/internal/linalg"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// Errors returned by the package.
var (
	ErrNotFitted = errors.New("multiresource: model not fitted")
	ErrBadInput  = errors.New("multiresource: invalid input")
)

// Model is a fitted two-series predictor. Construct with New, call Fit,
// then Predict. A fitted Model is safe for concurrent Predict calls.
type Model struct {
	p, q int // target and auxiliary lag orders

	fitted     bool
	fallback   bool
	muZ, muX   float64
	a          []float64 // a[0] multiplies z_{t-1}
	b          []float64 // b[0] multiplies x_{t-1}
	trainResid float64   // in-sample residual variance
}

// New returns an unfitted model with p target lags and q auxiliary lags.
// It panics if p < 1 or q < 0.
func New(p, q int) *Model {
	if p < 1 {
		panic(fmt.Sprintf("multiresource: target order %d < 1", p))
	}
	if q < 0 {
		panic(fmt.Sprintf("multiresource: auxiliary order %d < 0", q))
	}
	return &Model{p: p, q: q}
}

// Orders returns (p, q).
func (m *Model) Orders() (int, int) { return m.p, m.q }

// CrossGain returns the fraction of total absolute fitted weight carried by
// the auxiliary lags — 0 when the auxiliary series contributes nothing.
func (m *Model) CrossGain() float64 {
	if !m.fitted || m.fallback {
		return 0
	}
	var za, xa float64
	for _, c := range m.a {
		if c < 0 {
			za -= c
		} else {
			za += c
		}
	}
	for _, c := range m.b {
		if c < 0 {
			xa -= c
		} else {
			xa += c
		}
	}
	if za+xa == 0 {
		return 0
	}
	return xa / (za + xa)
}

// ResidualVariance returns the in-sample residual variance of the fit.
func (m *Model) ResidualVariance() float64 { return m.trainResid }

// Fit estimates the coefficients by least squares over aligned training
// series (same length, same sampling instants). Degenerate data — too few
// samples or a singular design — switches to a last-value fallback.
func (m *Model) Fit(target, aux []float64) error {
	if len(target) != len(aux) {
		return fmt.Errorf("multiresource: target %d samples, aux %d: %w", len(target), len(aux), ErrBadInput)
	}
	m.fitted = true
	m.fallback = true
	m.a, m.b = nil, nil
	m.muZ = timeseries.Mean(target)
	m.muX = timeseries.Mean(aux)
	m.trainResid = 0

	maxLag := m.p
	if m.q > maxLag {
		maxLag = m.q
	}
	nRows := len(target) - maxLag
	nCoef := m.p + m.q
	if nRows < 2*nCoef+2 {
		return nil
	}

	// Normal equations XᵀX c = Xᵀy over centered lags.
	xtx := linalg.NewMatrix(nCoef, nCoef)
	xty := make([]float64, nCoef)
	feat := make([]float64, nCoef)
	for t := maxLag; t < len(target); t++ {
		for i := 0; i < m.p; i++ {
			feat[i] = target[t-1-i] - m.muZ
		}
		for j := 0; j < m.q; j++ {
			feat[m.p+j] = aux[t-1-j] - m.muX
		}
		y := target[t] - m.muZ
		for r := 0; r < nCoef; r++ {
			xty[r] += feat[r] * y
			for c := r; c < nCoef; c++ {
				xtx.Set(r, c, xtx.At(r, c)+feat[r]*feat[c])
			}
		}
	}
	for r := 0; r < nCoef; r++ {
		for c := 0; c < r; c++ {
			xtx.Set(r, c, xtx.At(c, r))
		}
	}
	// Ridge epsilon keeps near-collinear designs (e.g. aux ≈ target)
	// solvable without changing well-posed fits measurably.
	var trace float64
	for i := 0; i < nCoef; i++ {
		trace += xtx.At(i, i)
	}
	eps := 1e-9 * (1 + trace/float64(nCoef))
	for i := 0; i < nCoef; i++ {
		xtx.Set(i, i, xtx.At(i, i)+eps)
	}

	coef, err := linalg.Solve(xtx, xty)
	if err != nil || !linalg.AllFinite(coef) {
		return nil
	}
	m.a = coef[:m.p]
	m.b = coef[m.p:]
	m.fallback = false

	// In-sample residual variance for diagnostics.
	var ss float64
	for t := maxLag; t < len(target); t++ {
		pred, _ := m.Predict(target[:t], aux[:t])
		d := pred - target[t]
		ss += d * d
	}
	m.trainResid = ss / float64(nRows)
	return nil
}

// Predict forecasts the next target value from the trailing histories of
// both series (each needs at least max(p, q) samples).
func (m *Model) Predict(target, aux []float64) (float64, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	maxLag := m.p
	if m.q > maxLag {
		maxLag = m.q
	}
	if len(target) < maxLag || len(aux) < maxLag {
		return 0, fmt.Errorf("multiresource: need >= %d trailing samples of both series: %w", maxLag, ErrBadInput)
	}
	if m.fallback {
		return target[len(target)-1], nil
	}
	var s float64
	nz, nx := len(target), len(aux)
	for i, c := range m.a {
		s += c * (target[nz-1-i] - m.muZ)
	}
	for j, c := range m.b {
		s += c * (aux[nx-1-j] - m.muX)
	}
	return m.muZ + s, nil
}

// CrossCorrelation returns the lag-k cross-correlation between z and x
// (corr(z_t, x_{t-k})), the statistic that motivates the model. k may be
// negative to test the reverse direction.
func CrossCorrelation(z, x []float64, k int) (float64, error) {
	if len(z) != len(x) {
		return 0, fmt.Errorf("multiresource: series lengths %d and %d: %w", len(z), len(x), ErrBadInput)
	}
	n := len(z)
	abs := k
	if abs < 0 {
		abs = -abs
	}
	if abs >= n {
		return 0, fmt.Errorf("multiresource: lag %d >= length %d: %w", k, n, ErrBadInput)
	}
	muZ, muX := timeseries.Mean(z), timeseries.Mean(x)
	sdZ, sdX := timeseries.StdDev(z), timeseries.StdDev(x)
	if sdZ == 0 || sdX == 0 {
		return 0, nil
	}
	var s float64
	cnt := 0
	for t := 0; t < n; t++ {
		tx := t - k
		if tx < 0 || tx >= n {
			continue
		}
		s += (z[t] - muZ) * (x[tx] - muX)
		cnt++
	}
	if cnt == 0 {
		return 0, nil
	}
	return s / float64(cnt) / (sdZ * sdX), nil
}
