package nws

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// stateTrace returns a deterministic series long enough to fit the pool and
// drive a few dozen selection steps.
func stateTrace(n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	v := make([]float64, n)
	for i := range v {
		v[i] = 50 + 30*math.Sin(float64(i)/7) + rng.NormFloat64()
	}
	return v
}

// driveSteps advances a selector over vals starting at offset m and returns
// the selection sequence.
func driveSteps(t *testing.T, s *Selector, m int, vals []float64) []int {
	t.Helper()
	var picks []int
	for i := m; i < len(vals); i++ {
		r, err := s.Step(vals[i-m:i], vals[i])
		if err != nil {
			t.Fatal(err)
		}
		picks = append(picks, r.Selected)
	}
	return picks
}

// TestStateRoundTrip checkpoints a mid-stream selector into a fresh one and
// requires both to make identical decisions from then on — the property the
// durable-state codec relies on across daemon restarts.
func TestStateRoundTrip(t *testing.T) {
	const m = 3
	vals := stateTrace(160)
	pool := fittedPool(t, m, vals[:80])

	variants := []struct {
		name string
		mk   func() (*Selector, error)
	}{
		{"cumulative", func() (*Selector, error) { return NewCumulativeMSE(pool) }},
		{"windowed", func() (*Selector, error) { return NewWindowedMSE(pool, 2) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			orig, err := v.mk()
			if err != nil {
				t.Fatal(err)
			}
			driveSteps(t, orig, m, vals[80:120])

			restored, err := v.mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.SetState(orig.State()); err != nil {
				t.Fatal(err)
			}
			got := driveSteps(t, restored, m, vals[120:])
			want := driveSteps(t, orig, m, vals[120:])
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: restored selected %d, original %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestStateIsDeepCopy mutates an exported State and checks the selector is
// unaffected: a snapshot held by a checkpointer must not alias live rings.
func TestStateIsDeepCopy(t *testing.T) {
	const m = 3
	vals := stateTrace(120)
	pool := fittedPool(t, m, vals[:80])

	s, err := NewWindowedMSE(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, s, m, vals[80:100])

	st := s.State()
	before := s.State()
	for i := range st.Recent {
		for j := range st.Recent[i] {
			st.Recent[i][j] = math.Inf(1)
		}
	}
	after := s.State()
	for i := range before.Recent {
		for j := range before.Recent[i] {
			if before.Recent[i][j] != after.Recent[i][j] {
				t.Fatalf("ring %d slot %d changed after mutating an exported snapshot", i, j)
			}
		}
	}

	c, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, c, m, vals[80:100])
	cs := c.State()
	cbefore := c.State()
	for i := range cs.SumSq {
		cs.SumSq[i] = -1
	}
	cafter := c.State()
	for i := range cbefore.SumSq {
		if cbefore.SumSq[i] != cafter.SumSq[i] {
			t.Fatalf("sumSq %d changed after mutating an exported snapshot", i)
		}
	}
}

// TestSetStateRejectsMismatches feeds SetState snapshots that disagree with
// the selector's shape and requires each to be rejected with a diagnostic
// naming the mismatch, leaving the selector usable.
func TestSetStateRejectsMismatches(t *testing.T) {
	const m = 3
	vals := stateTrace(120)
	pool := fittedPool(t, m, vals[:80])

	cum, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	win, err := NewWindowedMSE(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := pool.Size()

	cases := []struct {
		name string
		dst  *Selector
		st   State
		want string
	}{
		{"window mismatch", cum, State{Window: 2}, "window"},
		{"wrong expert count cumulative", cum, State{SumSq: make([]float64, n+1)}, "experts"},
		{"negative count", cum, State{SumSq: make([]float64, n), Count: -1}, "negative"},
		{"wrong expert count windowed", win, State{Window: 2, Recent: make([][]float64, n+1)}, "experts"},
		{"next outside window", win, State{Window: 2, Recent: make([][]float64, n), Next: 2}, "ring position"},
		{"filled outside window", win, State{Window: 2, Recent: make([][]float64, n), Filled: 3}, "ring position"},
		{"short ring", win, func() State {
			st := State{Window: 2, Recent: make([][]float64, n)}
			for i := range st.Recent {
				st.Recent[i] = make([]float64, 1)
			}
			return st
		}(), "slots"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.dst.SetState(c.st)
			if err == nil {
				t.Fatal("mismatched state accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}

	// Both selectors must still step after the rejected restores.
	if _, err := cum.Step(vals[80:80+m], vals[80+m]); err != nil {
		t.Fatalf("cumulative selector broken after rejected SetState: %v", err)
	}
	if _, err := win.Step(vals[80:80+m], vals[80+m]); err != nil {
		t.Fatalf("windowed selector broken after rejected SetState: %v", err)
	}
}
