package nws

import "fmt"

// State is the exported error-statistics state of a Selector, used by the
// durable-state codec in internal/core to checkpoint the degraded-mode
// fallback selector across restarts. Exactly one of the cumulative
// (SumSq/Count) or sliding (Recent/Next/Filled) families is populated,
// matching the selector variant.
type State struct {
	// Window is the selector's window (0 = cumulative).
	Window int
	// SumSq and Count are the cumulative statistics (Window == 0).
	SumSq []float64
	Count int
	// Recent, Next, and Filled are the sliding-window rings (Window > 0).
	Recent [][]float64
	Next   int
	Filled int
}

// State exports a deep copy of the selector's error statistics.
func (s *Selector) State() State {
	st := State{Window: s.window, Count: s.count, Next: s.next, Filled: s.filled}
	if s.window == 0 {
		st.SumSq = append([]float64(nil), s.sumSq...)
		return st
	}
	st.Recent = make([][]float64, len(s.recent))
	for i, ring := range s.recent {
		st.Recent[i] = append([]float64(nil), ring...)
	}
	return st
}

// SetState restores error statistics exported by State. The state must come
// from a selector with the same window and pool size; anything else is
// rejected so a mismatched snapshot cannot corrupt selection.
func (s *Selector) SetState(st State) error {
	if st.Window != s.window {
		return fmt.Errorf("nws: state window %d, selector window %d", st.Window, s.window)
	}
	n := s.pool.Size()
	if s.window == 0 {
		if len(st.SumSq) != n {
			return fmt.Errorf("nws: state tracks %d experts, pool has %d", len(st.SumSq), n)
		}
		if st.Count < 0 {
			return fmt.Errorf("nws: negative state count %d", st.Count)
		}
		copy(s.sumSq, st.SumSq)
		s.count = st.Count
		return nil
	}
	if len(st.Recent) != n {
		return fmt.Errorf("nws: state tracks %d experts, pool has %d", len(st.Recent), n)
	}
	if st.Next < 0 || st.Next >= s.window || st.Filled < 0 || st.Filled > s.window {
		return fmt.Errorf("nws: state ring position %d/%d outside window %d", st.Next, st.Filled, s.window)
	}
	for i, ring := range st.Recent {
		if len(ring) != s.window {
			return fmt.Errorf("nws: state ring %d has %d slots, want %d", i, len(ring), s.window)
		}
		copy(s.recent[i], ring)
	}
	s.next = st.Next
	s.filled = st.Filled
	return nil
}
