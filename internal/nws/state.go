package nws

import "fmt"

// State is the exported error-statistics state of a Selector, used by the
// durable-state codec in internal/core to checkpoint the degraded-mode
// fallback selector across restarts. Exactly one of the cumulative
// (SumSq/Counts) or sliding (Recent/Next/Filled) families is populated,
// matching the selector variant.
type State struct {
	// Window is the selector's window (0 = cumulative).
	Window int
	// SumSq and Counts are the cumulative statistics (Window == 0). Counts
	// is per-expert because unscorable steps (non-finite terms) are skipped
	// per expert. Count is the legacy shared denominator: snapshots written
	// before per-expert counting carry only Count, and SetState expands it.
	SumSq  []float64
	Counts []int
	Count  int
	// Recent, Next, and Filled are the sliding-window rings (Window > 0).
	// A ring slot equal to skippedTerm (-1) marks an unscorable step.
	Recent [][]float64
	Next   int
	Filled int
	// Stale is each expert's consecutive-unscorable-step counter. Absent
	// (nil) in legacy snapshots; SetState treats that as all-zero.
	Stale []int
}

// State exports a deep copy of the selector's error statistics.
func (s *Selector) State() State {
	st := State{
		Window: s.window,
		Next:   s.next,
		Filled: s.filled,
		Stale:  append([]int(nil), s.stale...),
	}
	if s.window == 0 {
		st.SumSq = append([]float64(nil), s.sumSq...)
		st.Counts = append([]int(nil), s.counts...)
		return st
	}
	st.Recent = make([][]float64, len(s.recent))
	for i, ring := range s.recent {
		st.Recent[i] = append([]float64(nil), ring...)
	}
	return st
}

// SetState restores error statistics exported by State. The state must come
// from a selector with the same window and pool size; anything else is
// rejected so a mismatched snapshot cannot corrupt selection.
func (s *Selector) SetState(st State) error {
	if st.Window != s.window {
		return fmt.Errorf("nws: state window %d, selector window %d", st.Window, s.window)
	}
	n := s.pool.Size()
	if st.Stale != nil && len(st.Stale) != n {
		return fmt.Errorf("nws: state staleness tracks %d experts, pool has %d", len(st.Stale), n)
	}
	for i, v := range st.Stale {
		if v < 0 {
			return fmt.Errorf("nws: negative staleness %d for expert %d", v, i)
		}
	}
	if s.window == 0 {
		if len(st.SumSq) != n {
			return fmt.Errorf("nws: state tracks %d experts, pool has %d", len(st.SumSq), n)
		}
		if st.Counts != nil && len(st.Counts) != n {
			return fmt.Errorf("nws: state counts %d experts, pool has %d", len(st.Counts), n)
		}
		if st.Count < 0 {
			return fmt.Errorf("nws: negative state count %d", st.Count)
		}
		for i, c := range st.Counts {
			if c < 0 {
				return fmt.Errorf("nws: negative state count %d for expert %d", c, i)
			}
		}
		copy(s.sumSq, st.SumSq)
		if st.Counts != nil {
			copy(s.counts, st.Counts)
		} else {
			// Legacy snapshot: every expert shared one denominator.
			for i := range s.counts {
				s.counts[i] = st.Count
			}
		}
		s.restoreStale(st.Stale)
		return nil
	}
	if len(st.Recent) != n {
		return fmt.Errorf("nws: state tracks %d experts, pool has %d", len(st.Recent), n)
	}
	if st.Next < 0 || st.Next >= s.window || st.Filled < 0 || st.Filled > s.window {
		return fmt.Errorf("nws: state ring position %d/%d outside window %d", st.Next, st.Filled, s.window)
	}
	for i, ring := range st.Recent {
		if len(ring) != s.window {
			return fmt.Errorf("nws: state ring %d has %d slots, want %d", i, len(ring), s.window)
		}
	}
	for i, ring := range st.Recent {
		copy(s.recent[i], ring)
	}
	s.next = st.Next
	s.filled = st.Filled
	s.restoreStale(st.Stale)
	return nil
}

// restoreStale applies a (possibly legacy-nil) staleness vector.
func (s *Selector) restoreStale(stale []int) {
	if stale == nil {
		for i := range s.stale {
			s.stale[i] = 0
		}
		return
	}
	copy(s.stale, stale)
}
