// Package nws reimplements the predictor-selection scheme of the Network
// Weather Service (paper §2, reference [30]), the baseline the LARPredictor
// is evaluated against: every expert in the pool runs in parallel on every
// step, a cumulative Mean Square Error is tracked per expert, and the expert
// with the lowest error-to-date is the one whose forecast is published.
//
// Two variants are provided, matching the paper's Figure 6 comparison:
//
//   - Cum.MSE   — errors accumulate over the entire history.
//   - W-Cum.MSE — errors accumulate over a sliding window of recent steps
//     (window 2 in the paper's experiment).
package nws

import (
	"errors"
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// ErrNoPool is returned when a selector is constructed without predictors.
var ErrNoPool = errors.New("nws: empty predictor pool")

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Selector is a mix-of-experts forecaster with cumulative-MSE selection.
// It is stateful — each Step folds one observation into the per-expert error
// statistics — and not safe for concurrent use.
type Selector struct {
	pool   *predictors.Pool
	window int // 0 = cumulative over all history

	// cumulative statistics (window == 0). counts is per-expert: an expert
	// whose forecast was non-finite on some step has fewer scored terms than
	// its peers, and averaging over a shared count would dilute its MSE.
	sumSq  []float64
	counts []int

	// sliding statistics (window > 0): ring buffer of recent squared errors.
	// A slot holding skippedTerm marks a step where the expert could not be
	// scored (non-finite forecast); errStat ignores such slots.
	recent [][]float64 // recent[i] is the ring for expert i
	next   int
	filled int

	// stale[i] counts consecutive steps expert i could not be scored. Past
	// the staleness budget the expert is benched — its error statistic
	// reports +Inf so selection never publishes a forecast from an expert
	// that has produced nothing finite for a full budget of steps. One
	// finite, scorable forecast un-benches it.
	stale []int

	// decisions[i] counts selections of expert i; nil when uninstrumented.
	decisions []*obs.Counter

	// allBuf is the reusable prediction buffer Step hands to the pool, so
	// the steady-state selector step performs no heap allocations.
	allBuf []float64
}

// NewCumulativeMSE returns the classic NWS selector: lowest cumulative MSE
// over the whole history wins.
func NewCumulativeMSE(pool *predictors.Pool) (*Selector, error) {
	return newSelector(pool, 0)
}

// NewWindowedMSE returns the fixed-window variant: lowest MSE over the last
// `window` steps wins. The paper's experiment uses window = 2.
func NewWindowedMSE(pool *predictors.Pool, window int) (*Selector, error) {
	if window < 1 {
		return nil, fmt.Errorf("nws: window %d < 1", window)
	}
	return newSelector(pool, window)
}

func newSelector(pool *predictors.Pool, window int) (*Selector, error) {
	if pool == nil || pool.Size() == 0 {
		return nil, ErrNoPool
	}
	s := &Selector{pool: pool, window: window, stale: make([]int, pool.Size())}
	if window == 0 {
		s.sumSq = make([]float64, pool.Size())
		s.counts = make([]int, pool.Size())
	} else {
		s.recent = make([][]float64, pool.Size())
		for i := range s.recent {
			s.recent[i] = make([]float64, window)
		}
	}
	return s, nil
}

// skippedTerm marks a ring slot whose step produced no scorable error term
// (squared errors are never negative, so the sentinel cannot collide).
const skippedTerm = -1

// staleBudget is the number of consecutive unscorable steps after which an
// expert is benched. Windowed selectors use the window itself — once every
// slot in the ring is a skipped term there is no evidence left to rank the
// expert on; cumulative selectors, whose statistic never forgets, use a
// fixed budget.
func (s *Selector) staleBudget() int {
	if s.window > 0 {
		return s.window
	}
	return 8
}

// Pool returns the selector's expert pool.
func (s *Selector) Pool() *predictors.Pool { return s.pool }

// Instrument binds the selector's decision counters
// (larpredictor_selector_decisions_total, labeled by expert) on r. The
// counters are pre-bound per pool expert, so counting a decision is one
// atomic add. A nil registry leaves the selector uninstrumented.
func (s *Selector) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	vec := r.Counter("larpredictor_selector_decisions_total",
		"NWS cumulative-MSE selector decisions, by selected expert.", "expert")
	s.decisions = make([]*obs.Counter, s.pool.Size())
	for i := 0; i < s.pool.Size(); i++ {
		s.decisions[i] = vec.WithLabels(s.pool.At(i).Name())
	}
}

// countDecision records one selection of expert i, if instrumented.
func (s *Selector) countDecision(i int) {
	if s.decisions != nil {
		s.decisions[i].Inc()
	}
}

// StepResult reports one selection step.
type StepResult struct {
	// Selected is the pool index of the expert whose forecast was published
	// for this step (chosen from error statistics before this step's
	// observation was seen).
	Selected int
	// Prediction is the published forecast.
	Prediction float64
	// All holds every expert's forecast, in pool order. The slice aliases a
	// buffer the selector reuses: it is valid until the next Step call, so
	// callers that retain it across steps must copy it.
	All []float64
}

// Step publishes a forecast for the observation that follows window, then
// folds that observation into every expert's error statistics. This mirrors
// NWS operation: the selection for step t is based on errors from steps
// < t; all experts run in parallel regardless of which is selected.
func (s *Selector) Step(window []float64, observed float64) (StepResult, error) {
	all, err := s.pool.PredictAllInto(s.allBuf, window)
	if err != nil {
		return StepResult{}, err
	}
	s.allBuf = all
	sel := s.selectExpert()
	s.countDecision(sel)
	// Fold this step's errors in. A non-finite term — NaN/Inf observation or
	// expert forecast — is skipped rather than accumulated: folding it would
	// poison the expert's statistic permanently (cumulative) or for a full
	// window (sliding), since NaN propagates through every later average and
	// never compares "lowest". Skipped terms count against the expert's
	// staleness budget instead, so an expert that has stopped producing
	// finite forecasts is benched rather than ranked on stale evidence.
	if !isFinite(observed) {
		// Nothing can be scored this step; no expert is at fault, so the
		// statistics (and staleness) are left untouched.
		return StepResult{Selected: sel, Prediction: all[sel], All: all}, nil
	}
	if s.window == 0 {
		for i, p := range all {
			d := p - observed
			if !isFinite(d) {
				s.stale[i]++
				continue
			}
			s.sumSq[i] += d * d
			s.counts[i]++
			s.stale[i] = 0
		}
	} else {
		for i, p := range all {
			d := p - observed
			if !isFinite(d) {
				s.recent[i][s.next] = skippedTerm
				s.stale[i]++
				continue
			}
			s.recent[i][s.next] = d * d
			s.stale[i] = 0
		}
		s.next = (s.next + 1) % s.window
		if s.filled < s.window {
			s.filled++
		}
	}
	return StepResult{Selected: sel, Prediction: all[sel], All: all}, nil
}

// Select returns the pool index the selector would publish right now — the
// expert with the lowest current error statistic — without stepping the
// selector. Callers that forecast outside Step (e.g. the degraded-mode
// fallback chain in internal/core) use it to pick an expert and run it
// themselves.
func (s *Selector) Select() int {
	sel := s.selectExpert()
	s.countDecision(sel)
	return sel
}

// ErrStats returns every expert's current selection statistic (mean squared
// error over the tracked horizon), in pool order. The square root of an
// entry is a crude one-sigma uncertainty estimate for that expert's next
// forecast.
func (s *Selector) ErrStats() []float64 {
	out := make([]float64, s.pool.Size())
	for i := range out {
		out[i] = s.errStat(i)
	}
	return out
}

// selectExpert returns the pool index with the lowest current error
// statistic. With no history yet, every expert ties at zero and the lowest
// index wins, matching the deterministic tie-break used pool-wide.
func (s *Selector) selectExpert() int {
	best, bestErr := 0, s.errStat(0)
	for i := 1; i < s.pool.Size(); i++ {
		if e := s.errStat(i); e < bestErr {
			best, bestErr = i, e
		}
	}
	return best
}

// errStat returns expert i's current selection statistic (mean squared
// error over the tracked horizon, skipped terms excluded). A benched expert
// — one past its staleness budget — reports +Inf so it can never win
// selection until it produces a finite forecast again.
func (s *Selector) errStat(i int) float64 {
	if s.stale[i] > s.staleBudget() {
		return math.Inf(1)
	}
	if s.window == 0 {
		if s.counts[i] == 0 {
			return 0
		}
		return s.sumSq[i] / float64(s.counts[i])
	}
	var sum float64
	valid := 0
	for j := 0; j < s.filled; j++ {
		if s.recent[i][j] == skippedTerm {
			continue
		}
		sum += s.recent[i][j]
		valid++
	}
	if valid == 0 {
		return 0
	}
	return sum / float64(valid)
}

// Reset clears all accumulated error statistics.
func (s *Selector) Reset() {
	for i := range s.stale {
		s.stale[i] = 0
	}
	if s.window == 0 {
		for i := range s.sumSq {
			s.sumSq[i] = 0
			s.counts[i] = 0
		}
		return
	}
	for i := range s.recent {
		for j := range s.recent[i] {
			s.recent[i][j] = 0
		}
	}
	s.next, s.filled = 0, 0
}

// RunResult is the outcome of running a selector over a framed series.
type RunResult struct {
	// Selected[i] is the expert chosen for frame i.
	Selected []int
	// Predictions[i] is the published forecast for frame i.
	Predictions []float64
	// Targets[i] is the observed value for frame i.
	Targets []float64
	// MSE is the mean squared error of the published forecasts.
	MSE float64
}

// Run steps the selector through every frame in order and aggregates the
// published-forecast error. Frames must be in time order; the selector's
// existing statistics are retained (call Reset first for a cold start).
func (s *Selector) Run(frames []timeseries.Frame) (RunResult, error) {
	res := RunResult{
		Selected:    make([]int, len(frames)),
		Predictions: make([]float64, len(frames)),
		Targets:     make([]float64, len(frames)),
	}
	var sumSq float64
	for i, f := range frames {
		step, err := s.Step(f.Window, f.Target)
		if err != nil {
			return RunResult{}, fmt.Errorf("nws: frame %d: %w", i, err)
		}
		res.Selected[i] = step.Selected
		res.Predictions[i] = step.Prediction
		res.Targets[i] = f.Target
		d := step.Prediction - f.Target
		sumSq += d * d
	}
	if len(frames) > 0 {
		res.MSE = sumSq / float64(len(frames))
	}
	return res, nil
}
