package nws

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/faults"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func fittedPool(t *testing.T, m int, train []float64) *predictors.Pool {
	t.Helper()
	pool := predictors.PaperPool(m)
	if err := pool.Fit(train); err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewCumulativeMSE(nil); !errors.Is(err, ErrNoPool) {
		t.Error("accepted nil pool")
	}
	if _, err := NewCumulativeMSE(predictors.NewPool()); !errors.Is(err, ErrNoPool) {
		t.Error("accepted empty pool")
	}
	pool := predictors.PaperPool(3)
	if _, err := NewWindowedMSE(pool, 0); err == nil {
		t.Error("accepted window 0")
	}
}

func TestFirstStepSelectsLowestIndex(t *testing.T) {
	pool := fittedPool(t, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	step, err := s.Step([]float64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if step.Selected != 0 {
		t.Errorf("cold-start selection = %d, want 0", step.Selected)
	}
	if len(step.All) != 3 {
		t.Errorf("All has %d entries", len(step.All))
	}
	if step.Prediction != step.All[0] {
		t.Error("published prediction is not the selected expert's")
	}
}

func TestCumulativeSelectionConverges(t *testing.T) {
	// Construct a pool where LAST is consistently best (a smooth ramp) and
	// verify the selector converges to it.
	pool := predictors.NewPool(predictors.NewSWAvg(4), predictors.NewLast())
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 64)
	for i := range v {
		v[i] = float64(i)
	}
	frames, err := timeseries.FrameSeries(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	// After the first couple of steps, LAST (index 1) must dominate.
	for i := 3; i < len(res.Selected); i++ {
		if res.Selected[i] != 1 {
			t.Fatalf("step %d selected %d, want LAST", i, res.Selected[i])
		}
	}
	if res.MSE <= 0 {
		t.Error("ramp MSE should be positive for LAST (constant +1 error)")
	}
}

func TestWindowedSelectorAdaptsFasterThanCumulative(t *testing.T) {
	// Regime change: long stretch where LAST wins, then a regime where
	// SW_AVG wins. The windowed selector must switch sooner.
	// Ramp with slope 1: LAST errs 1/step (sq 1), SW_AVG(4) errs 2.5/step
	// (sq 6.25) — LAST builds a big cumulative lead. Then a mild
	// oscillation 5±1: LAST errs 2/step (sq 4), SW_AVG ~1 (sq ~1). The
	// cumulative average needs ~175 steps to cross; the window-2 selector
	// crosses within a couple of steps.
	rng := rand.New(rand.NewSource(4))
	var v []float64
	for i := 0; i < 100; i++ { // smooth ramp: LAST wins
		v = append(v, float64(i))
	}
	for i := 0; i < 100; i++ { // mild oscillation around 5: SW_AVG wins
		v = append(v, 5+2*float64(i%2)-1+rng.Float64()*0.01)
	}
	pool := predictors.NewPool(predictors.NewLast(), predictors.NewSWAvg(4))
	frames, err := timeseries.FrameSeries(v, 4)
	if err != nil {
		t.Fatal(err)
	}

	cum, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	win, err := NewWindowedMSE(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cum.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := win.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	firstSwitch := func(sel []int) int {
		for i := 98; i < len(sel); i++ {
			if sel[i] == 1 {
				return i
			}
		}
		return len(sel)
	}
	cs, ws := firstSwitch(cres.Selected), firstSwitch(wres.Selected)
	if ws >= cs {
		t.Errorf("windowed selector switched at %d, cumulative at %d; windowed should adapt faster", ws, cs)
	}
}

func TestStepErrorsAccumulateBeforeNextSelection(t *testing.T) {
	// Expert 0 (LAST) makes a huge error on step 1; step 2 must select
	// expert 1 if expert 1 was accurate.
	pool := predictors.NewPool(predictors.NewLast(), predictors.NewSWAvg(2))
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	// window [0, 10]: LAST predicts 10, SW_AVG predicts 5. observed 5:
	// LAST err 25, SW err 0.
	if _, err := s.Step([]float64{0, 10}, 5); err != nil {
		t.Fatal(err)
	}
	step, err := s.Step([]float64{10, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if step.Selected != 1 {
		t.Errorf("step 2 selected %d, want SW_AVG after LAST's big miss", step.Selected)
	}
}

func TestReset(t *testing.T) {
	pool := predictors.NewPool(predictors.NewLast(), predictors.NewSWAvg(2))
	for _, mk := range []func() (*Selector, error){
		func() (*Selector, error) { return NewCumulativeMSE(pool) },
		func() (*Selector, error) { return NewWindowedMSE(pool, 3) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step([]float64{0, 10}, 5); err != nil {
			t.Fatal(err)
		}
		s.Reset()
		step, err := s.Step([]float64{0, 10}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if step.Selected != 0 {
			t.Errorf("post-Reset selection = %d, want cold-start 0", step.Selected)
		}
	}
}

func TestRunEmptyFrames(t *testing.T) {
	pool := fittedPool(t, 2, []float64{1, 2, 3, 4})
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE != 0 || len(res.Selected) != 0 {
		t.Errorf("empty run = %+v", res)
	}
}

func TestRunPropagatesPredictorErrors(t *testing.T) {
	pool := predictors.NewPool(predictors.NewSWAvg(5))
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	frames := []timeseries.Frame{{Window: []float64{1, 2}, Target: 3}}
	if _, err := s.Run(frames); err == nil {
		t.Error("short window did not propagate an error")
	}
}

func TestRunMSEMatchesManualComputation(t *testing.T) {
	pool := predictors.NewPool(predictors.NewLast())
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2, 4, 8}
	frames, err := timeseries.FrameSeries(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	// LAST errors: (2-1), (4-2), (8-4) → MSE = (1+4+16)/3 = 7.
	if math.Abs(res.MSE-7) > 1e-12 {
		t.Errorf("MSE = %g, want 7", res.MSE)
	}
}

func TestSelectAndErrStatsMirrorStep(t *testing.T) {
	// A smooth ramp makes LAST the consistently best expert; Select and
	// ErrStats must expose the same state Step uses internally, without
	// mutating it.
	pool := predictors.NewPool(predictors.NewSWAvg(4), predictors.NewLast())
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	window := []float64{1, 2, 3, 4}
	for v := 5.0; v < 25; v++ {
		if _, err := s.Step(window, v); err != nil {
			t.Fatal(err)
		}
		window = append(window[1:], v)
	}
	sel := s.Select()
	if sel != 1 {
		t.Errorf("Select() = %d, want 1 (LAST) on a smooth ramp", sel)
	}
	stats := s.ErrStats()
	if len(stats) != pool.Size() {
		t.Fatalf("ErrStats returned %d entries for a pool of %d", len(stats), pool.Size())
	}
	if !(stats[1] < stats[0]) {
		t.Errorf("ErrStats = %v: selected expert's MSE is not the minimum", stats)
	}
	// Read-only: a second call and a Step selection must agree.
	if again := s.Select(); again != sel {
		t.Errorf("Select() changed state: %d then %d", sel, again)
	}
	step, err := s.Step(window, 25)
	if err != nil {
		t.Fatal(err)
	}
	if step.Selected != sel {
		t.Errorf("Step selected %d after Select() reported %d", step.Selected, sel)
	}
}

// TestNaNBurstDoesNotPoisonSelection is the regression test for the
// score-poisoning bug: a single non-finite observation (or expert forecast)
// used to be folded straight into the error statistics, where it turned the
// cumulative statistic NaN forever — every later comparison on the poisoned
// statistic is false, so selection freezes on expert 0 no matter how the
// experts actually perform. Non-finite terms must be skipped instead.
func TestNaNBurstDoesNotPoisonSelection(t *testing.T) {
	// A smooth ramp, so LAST is consistently the best expert, poisoned by a
	// periodic NaN burst from the faults package.
	const n = 128
	step := 5 * time.Minute
	epoch := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	clean := make([]float64, n)
	for i := range clean {
		clean[i] = float64(i)
	}
	poisoned, _ := faults.InjectValues(clean, vmtrace.VMID("VM1"), "CPU_usedsec", epoch, step,
		&faults.NaNBurst{Epoch: epoch, Start: 20 * step, Len: 2 * step, Period: 40 * step})

	pool := predictors.NewPool(predictors.NewSWAvg(4), predictors.NewLast())
	s, err := NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := timeseries.FrameSeries(poisoned, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Selection must track LAST (index 1) at the end of the trace, and the
	// error statistics must have stayed finite throughout.
	if got := res.Selected[len(res.Selected)-1]; got != 1 {
		t.Errorf("final selection = %d after NaN bursts, want LAST", got)
	}
	for i, e := range s.ErrStats() {
		if math.IsNaN(e) {
			t.Errorf("expert %d error statistic is NaN: the burst poisoned it", i)
		}
	}

	// The windowed variant has the same bug with a window-long horizon.
	w, err := NewWindowedMSE(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := w.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got := wres.Selected[len(wres.Selected)-1]; got != 1 {
		t.Errorf("windowed final selection = %d after NaN bursts, want LAST", got)
	}
	for i, e := range w.ErrStats() {
		if math.IsNaN(e) {
			t.Errorf("windowed expert %d error statistic is NaN", i)
		}
	}
}

// TestStaleExpertIsBenched: an expert that stops producing finite forecasts
// is excluded from selection once it exhausts its staleness budget, and
// rejoins as soon as it produces a scorable forecast again.
func TestStaleExpertIsBenched(t *testing.T) {
	// SW_AVG(2) sees the NaN at the head of the window and predicts NaN;
	// LAST sees only the tail and stays finite.
	pool := predictors.NewPool(predictors.NewSWAvg(2), predictors.NewLast())
	s, err := NewWindowedMSE(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First give SW_AVG the better record so only benching can unseat it.
	for i := 0; i < 4; i++ {
		if _, err := s.Step([]float64{10, 10}, 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Select(); got != 0 {
		t.Fatalf("selection = %d on clean steps, want SW_AVG", got)
	}
	// Now SW_AVG goes non-finite for more than the budget (= window = 2).
	for i := 0; i < 3; i++ {
		if _, err := s.Step([]float64{math.NaN(), 10}, 10); err != nil {
			t.Fatal(err)
		}
	}
	if e := s.ErrStats()[0]; !math.IsInf(e, 1) {
		t.Errorf("stale expert's statistic = %g, want +Inf (benched)", e)
	}
	if got := s.Select(); got != 1 {
		t.Errorf("selection = %d with expert 0 benched, want LAST", got)
	}
	// One finite forecast un-benches it.
	if _, err := s.Step([]float64{10, 10}, 10); err != nil {
		t.Fatal(err)
	}
	if e := s.ErrStats()[0]; math.IsInf(e, 1) {
		t.Error("expert 0 still benched after a scorable step")
	}
}
