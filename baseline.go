package larpredictor

import (
	"github.com/acis-lab/larpredictor/internal/nws"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// Network Weather Service baseline types, re-exported so applications can
// benchmark the LARPredictor against the comparison system the paper uses.
type (
	// NWSSelector is a mix-of-experts forecaster using cumulative- or
	// windowed-MSE selection (the NWS scheme).
	NWSSelector = nws.Selector
	// NWSStepResult reports one NWS selection step.
	NWSStepResult = nws.StepResult
)

// NewCumulativeMSE returns the classic NWS selector: all experts run every
// step and the one with the lowest cumulative MSE publishes the forecast.
func NewCumulativeMSE(pool *Pool) (*NWSSelector, error) {
	return nws.NewCumulativeMSE(pool)
}

// NewWindowedMSE returns the fixed-window NWS variant (W-Cum.MSE); the
// paper's Figure 6 uses window = 2.
func NewWindowedMSE(pool *Pool, window int) (*NWSSelector, error) {
	return nws.NewWindowedMSE(pool, window)
}

// Synthetic trace generation, re-exported for applications that want
// realistic VM resource workloads without a hypervisor.
type (
	// VMID names one of the five simulated virtual machines (VM1..VM5).
	VMID = vmtrace.VMID
	// MetricName names one of the twelve vmkusage metrics.
	MetricName = vmtrace.Metric
	// TraceSet is the five-VM × twelve-metric synthetic trace collection.
	TraceSet = vmtrace.TraceSet
)

// StandardTraceSet deterministically generates the paper's five-VM trace
// set for a seed: VM1 covers 7 days at 30-minute intervals, VM2–VM5 cover
// 24 hours at 5-minute intervals, across twelve resource metrics each.
func StandardTraceSet(seed int64) *TraceSet {
	return vmtrace.StandardTraceSet(seed)
}

// VMs lists the five simulated virtual machines in paper order.
func VMs() []VMID { return vmtrace.VMs() }

// MetricNames lists the twelve metrics in the paper's table order.
func MetricNames() []MetricName { return vmtrace.Metrics() }
