GO ?= go

.PHONY: build test race vet staticcheck vuln fmt fuzz-seeds crash-test bench bench-baseline ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt check: fails listing any file that is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the fuzz targets' seed corpora as ordinary tests (no fuzzing engine;
# deterministic and fast, so it belongs in ci).
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/rrd ./internal/preddb ./internal/durable

# Kill-and-restart durability tests: crash mid-run, warm restart, and
# require bit-identical results versus an uninterrupted run.
crash-test:
	$(GO) test -v -run 'Crash|Corrupt|Fingerprint|Extends' ./cmd/monitord

# Race-enabled test run; includes the monitord chaos/supervision tests,
# which exercise the concurrent per-pipeline supervisor.
race:
	$(GO) test -race ./...

# Static analysis beyond vet, when the tools are installed. Neither tool is
# fetched: the build must work offline, so each is skipped (with a notice)
# if missing from PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

# Benchmark workflow for instrumentation / hot-path changes. Capture a
# baseline on the clean tree, then compare after the change:
#
#   make bench-baseline          # writes bench-old.txt
#   ...edit...
#   make bench                   # writes bench-new.txt
#   benchstat bench-old.txt bench-new.txt   # if installed; else eyeball
#
# BENCH selects the benchmarks (default: the hot forecast path, which the
# observability layer must not regress by more than ~5%).
BENCH ?= BenchmarkForecastPath
BENCHFLAGS ?= -run '^$$' -bench '$(BENCH)' -benchmem -count 6

bench-baseline:
	$(GO) test $(BENCHFLAGS) . | tee bench-old.txt

bench:
	$(GO) test $(BENCHFLAGS) . | tee bench-new.txt
	@if [ -f bench-old.txt ] && command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-old.txt bench-new.txt; \
	elif [ -f bench-old.txt ]; then \
		echo "benchstat not installed; compare bench-old.txt vs bench-new.txt by hand"; \
	fi

ci: fmt vet staticcheck build fuzz-seeds race
