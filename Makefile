GO ?= go

.PHONY: build test race vet staticcheck vuln fmt fuzz-seeds fuzz-wire crash-test chaos-soak cluster-soak run-predictd bench bench-baseline bench-guard cover cover-html ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt check: fails listing any file that is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the fuzz targets' seed corpora as ordinary tests (no fuzzing engine;
# deterministic and fast, so it belongs in ci).
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/rrd ./internal/preddb ./internal/durable ./internal/wire ./internal/tournament ./cmd/predictd

# Short real fuzzing of the binary ingest protocol: corrupt frames,
# truncation, and version skew must never panic or mis-ack. Go's fuzzer
# accepts one -fuzz target per invocation, so the targets run back to back.
# FUZZTIME bounds each target (CI uses the default; crank it locally).
FUZZTIME ?= 30s

fuzz-wire:
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzWireRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wire

# Kill-and-restart durability tests: crash mid-run, warm restart, and
# require bit-identical results versus an uninterrupted run (monitord), or
# identical served forecasts across a drain/restart cycle and WAL replay
# after kill -9 (predictd).
crash-test:
	$(GO) test -v -run 'Crash|Corrupt|Fingerprint|Extends' ./cmd/monitord ./cmd/predictd

# End-to-end chaos soak: keyed ingest through the fault-injecting proxy at
# a WAL-mode predictd that is kill -9'd and restarted mid-stream; passes
# only if every acked sample is applied exactly once and forecasts kept
# serving. Race-enabled and deterministic (seeded fault schedule).
chaos-soak:
	$(GO) test -race -v -count=1 -run TestChaosSoak ./cmd/predictd

# Replicated-cluster chaos soak: three WAL-mode nodes behind per-node fault
# proxies, one kill -9'd mid-ingest and rejoined. Passes only if every acked
# sample applies exactly once across forward/replicate/handoff/replay,
# forecast reads never stop succeeding, and the rejoined node resumes via
# warm handoff. Race stays off: three child daemons plus the soak harness
# under the race runtime blow well past useful CI latency — `make race`
# already covers the cluster package's in-process tests.
cluster-soak:
	$(GO) test -v -count=1 -timeout 300s -run TestClusterSoak ./cmd/predictd

# Run the HTTP prediction service locally (ctrl-C drains and snapshots).
run-predictd:
	$(GO) run ./cmd/predictd -listen :8100 -state .predictd-state

# Race-enabled test run; includes the monitord chaos/supervision tests,
# which exercise the concurrent per-pipeline supervisor.
race:
	$(GO) test -race ./...

# Static analysis beyond vet, when the tools are installed. Neither tool is
# fetched: the build must work offline, so each is skipped (with a notice)
# if missing from PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

# Benchmark workflow for instrumentation / hot-path changes. Capture a
# baseline on the clean tree, then compare after the change:
#
#   make bench-baseline          # writes bench-old.txt
#   ...edit...
#   make bench                   # writes bench-new.txt
#   benchstat bench-old.txt bench-new.txt   # if installed; else eyeball
#
# BENCH selects the benchmarks (default: the hot forecast path, which the
# observability layer must not regress by more than ~5%).
BENCH ?= BenchmarkForecastPath
BENCHFLAGS ?= -run '^$$' -bench '$(BENCH)' -benchmem -count 6

BENCH_PKGS ?= . ./cmd/predictd ./internal/cluster ./internal/server ./internal/tournament ./internal/wire

bench-baseline:
	$(GO) test $(BENCHFLAGS) $(BENCH_PKGS) | tee bench-old.txt

bench:
	$(GO) test $(BENCHFLAGS) $(BENCH_PKGS) | tee bench-new.txt
	@if [ -f bench-old.txt ] && command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-old.txt bench-new.txt; \
	elif [ -f bench-old.txt ]; then \
		echo "benchstat not installed; compare bench-old.txt vs bench-new.txt by hand"; \
	fi

# Regression gate over bench-old.txt / bench-new.txt (see bench-baseline and
# bench above): cmd/benchguard fails the build when any benchmark's median
# time/op regresses more than 10% or its median allocs/op grows at all.
# benchstat, when installed, adds the statistician's view; the verdict is
# benchguard's. CI's bench-regression job drives this against the merge
# base with:
#
#   GUARD_BENCH='BenchmarkForecastPath|BenchmarkEngineThroughput/streams=10000$'
#   git checkout <base> && make bench-baseline BENCH="$GUARD_BENCH"
#   git checkout <head> && make bench          BENCH="$GUARD_BENCH"
#   make bench-guard
# benchstat's delta table prints first so a failing gate always comes with
# the readable comparison right above the verdict.
bench-guard:
	@test -f bench-old.txt || { echo "bench-old.txt missing: run 'make bench-baseline' on the baseline tree first"; exit 1; }
	@test -f bench-new.txt || { echo "bench-new.txt missing: run 'make bench' on the changed tree first"; exit 1; }
	@if command -v benchstat >/dev/null 2>&1; then benchstat bench-old.txt bench-new.txt; fi
	$(GO) run ./cmd/benchguard -max-time-delta 10 bench-old.txt bench-new.txt

# Statement-coverage gate: run the full test suite with cross-package
# coverage and fail below COVER_MIN% total. coverage.out feeds cover-html
# and the CI artifact upload.
COVER_MIN ?= 70

cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t + 0 < min + 0) { printf "coverage %.1f%% is below the %d%% gate\n", t, min; exit 1 } \
		printf "coverage %.1f%% (gate %d%%)\n", t, min }'

cover-html: cover
	$(GO) tool cover -html=coverage.out -o coverage.html

ci: fmt vet staticcheck vuln build fuzz-seeds race crash-test cover
