GO ?= go

.PHONY: build test race vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled test run; includes the monitord chaos/supervision tests,
# which exercise the concurrent per-pipeline supervisor.
race:
	$(GO) test -race ./...

ci: vet build race
