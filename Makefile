GO ?= go

.PHONY: build test race vet fmt fuzz-seeds crash-test ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt check: fails listing any file that is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the fuzz targets' seed corpora as ordinary tests (no fuzzing engine;
# deterministic and fast, so it belongs in ci).
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/rrd ./internal/preddb ./internal/durable

# Kill-and-restart durability tests: crash mid-run, warm restart, and
# require bit-identical results versus an uninterrupted run.
crash-test:
	$(GO) test -v -run 'Crash|Corrupt|Fingerprint|Extends' ./cmd/monitord

# Race-enabled test run; includes the monitord chaos/supervision tests,
# which exercise the concurrent per-pipeline supervisor.
race:
	$(GO) test -race ./...

ci: fmt vet build fuzz-seeds race
