package larpredictor_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	larpredictor "github.com/acis-lab/larpredictor"
)

// workload generates a regime-switching series through the public API's
// trace generator so facade tests exercise real workload shapes.
func workload(t *testing.T) []float64 {
	t.Helper()
	ts := larpredictor.StandardTraceSet(7)
	s, err := ts.Get("VM2", "CPU_usedsec")
	if err != nil {
		t.Fatal(err)
	}
	return s.Values
}

func TestFacadeTrainForecastEvaluate(t *testing.T) {
	vals := workload(t)
	p, err := larpredictor.New(larpredictor.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forecast(vals[:5]); !errors.Is(err, larpredictor.ErrNotTrained) {
		t.Fatalf("pre-train Forecast err = %v", err)
	}
	if err := p.Train(vals[:144]); err != nil {
		t.Fatal(err)
	}
	pred, err := p.Forecast(vals[139:144])
	if err != nil {
		t.Fatal(err)
	}
	if pred.SelectedName == "" || math.IsNaN(pred.Value) {
		t.Fatalf("prediction = %+v", pred)
	}
	res, err := p.Evaluate(vals[144:])
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 || res.OracleMSE > res.LARMSE+1e-12 {
		t.Fatalf("eval = %+v", res)
	}
}

func TestFacadeConfigValidation(t *testing.T) {
	if _, err := larpredictor.New(larpredictor.Config{}); !errors.Is(err, larpredictor.ErrBadConfig) {
		t.Fatalf("zero config err = %v", err)
	}
}

func TestFacadeCustomPool(t *testing.T) {
	cfg := larpredictor.DefaultConfig(5)
	cfg.Pool = larpredictor.ExtendedPool(5)
	p, err := larpredictor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pool().Size() != 8 {
		t.Fatalf("pool size = %d", p.Pool().Size())
	}
	if err := p.Train(workload(t)); err != nil {
		t.Fatal(err)
	}
}

// reverser is a toy user-defined expert: it predicts the first window value.
type reverser struct{}

func (reverser) Name() string        { return "REVERSER" }
func (reverser) Order() int          { return 2 }
func (reverser) Fit([]float64) error { return nil }
func (reverser) Predict(w []float64) (float64, error) {
	if len(w) < 2 {
		return 0, larpredictor.ErrWindowTooShort
	}
	return w[0], nil
}

func TestFacadeUserDefinedPredictor(t *testing.T) {
	larpredictor.RegisterPredictor("REVERSER", func() larpredictor.Predictor { return reverser{} })
	byName, err := larpredictor.NewPredictor("REVERSER")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Name() != "REVERSER" {
		t.Fatal("registry returned the wrong predictor")
	}
	cfg := larpredictor.DefaultConfig(5)
	experts := append([]larpredictor.Predictor{reverser{}}, larpredictor.PaperPool(5).Predictors()...)
	cfg.Pool = larpredictor.NewPool(experts...)
	p, err := larpredictor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(workload(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := larpredictor.NewPredictor("NO_SUCH"); !errors.Is(err, larpredictor.ErrUnknownPredictor) {
		t.Fatal("unknown predictor accepted")
	}
}

func TestFacadeOnline(t *testing.T) {
	o, err := larpredictor.NewOnline(larpredictor.OnlineConfig{
		Predictor:    larpredictor.DefaultConfig(5),
		TrainSize:    60,
		AuditWindow:  10,
		MSEThreshold: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := 0.0
	for i := 0; i < 200; i++ {
		if o.Trained() {
			if _, err := o.Forecast(); err != nil {
				t.Fatal(err)
			}
		} else if _, err := o.Forecast(); !errors.Is(err, larpredictor.ErrNotReady) {
			t.Fatalf("untrained Forecast err = %v", err)
		}
		x = 0.9*x + rng.NormFloat64()
		if _, err := o.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if !o.Trained() {
		t.Fatal("online predictor never trained")
	}
}

func TestFacadeNWSBaseline(t *testing.T) {
	pool := larpredictor.PaperPool(3)
	if err := pool.Fit(workload(t)[:100]); err != nil {
		t.Fatal(err)
	}
	sel, err := larpredictor.NewCumulativeMSE(pool)
	if err != nil {
		t.Fatal(err)
	}
	step, err := sel.Step([]float64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(step.All) != 3 {
		t.Fatalf("step = %+v", step)
	}
	if _, err := larpredictor.NewWindowedMSE(pool, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTraceSet(t *testing.T) {
	ts := larpredictor.StandardTraceSet(3)
	if len(larpredictor.VMs()) != 5 || len(larpredictor.MetricNames()) != 12 {
		t.Fatal("trace-set geometry wrong")
	}
	for _, vm := range larpredictor.VMs() {
		for _, m := range larpredictor.MetricNames() {
			if _, err := ts.Get(vm, m); err != nil {
				t.Fatalf("%s/%s: %v", vm, m, err)
			}
		}
	}
}

func TestFacadeHelpers(t *testing.T) {
	n := larpredictor.FitNormalizer([]float64{1, 2, 3})
	if n.Mean != 2 {
		t.Fatalf("normalizer = %+v", n)
	}
	s := larpredictor.NewSeries("x", []float64{1, 2})
	if s.Len() != 2 || s.Name != "x" {
		t.Fatalf("series = %+v", s)
	}
	mse, err := larpredictor.MSE([]float64{1}, []float64{3})
	if err != nil || mse != 4 {
		t.Fatalf("MSE = %g, %v", mse, err)
	}
}

func TestFacadeResilienceSurface(t *testing.T) {
	o, err := larpredictor.NewOnline(larpredictor.OnlineConfig{
		Predictor:   larpredictor.DefaultConfig(3),
		TrainSize:   10,
		AuditWindow: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Health() != larpredictor.Healthy {
		t.Fatalf("fresh predictor health = %v, want Healthy", o.Health())
	}
	if larpredictor.Failed.String() != "Failed" || larpredictor.Fallback.String() != "Fallback" {
		t.Error("health states did not re-export")
	}
	for i := 0; i < 20; i++ {
		if _, err := o.Observe(float64(i % 7)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != larpredictor.SourceLAR {
		t.Errorf("healthy forecast Source = %q, want %q", p.Source, larpredictor.SourceLAR)
	}
	var hs larpredictor.HealthStats = o.HealthStats()
	if hs.State != larpredictor.Healthy || hs.BreakerOpen {
		t.Errorf("health stats = %+v", hs)
	}
	if larpredictor.ErrFailed == nil || larpredictor.SourceSelector == "" || larpredictor.SourceLastResort == "" {
		t.Error("resilience sentinels did not re-export")
	}
}
