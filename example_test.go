package larpredictor_test

import (
	"fmt"

	larpredictor "github.com/acis-lab/larpredictor"
)

// Example demonstrates the basic train-then-forecast flow on a deterministic
// sawtooth series: the window preceding the forecast is rising, so the
// selected expert's forecast continues the local pattern.
func Example() {
	// A strictly periodic series: 0 1 2 3 0 1 2 3 ...
	history := make([]float64, 120)
	for i := range history {
		history[i] = float64(i % 4)
	}

	p, err := larpredictor.New(larpredictor.DefaultConfig(4))
	if err != nil {
		panic(err)
	}
	if err := p.Train(history); err != nil {
		panic(err)
	}
	pred, err := p.Forecast([]float64{0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected one of %d experts\n", p.Pool().Size())
	fmt.Printf("forecast is finite: %v\n", pred.Value == pred.Value)
	// Output:
	// selected one of 3 experts
	// forecast is finite: true
}

// ExampleNewPool shows how class labels follow pool order.
func ExampleNewPool() {
	pool := larpredictor.PaperPool(5)
	for i, name := range pool.Names() {
		fmt.Printf("%d - %s\n", i+1, name)
	}
	// Output:
	// 1 - LAST
	// 2 - AR
	// 3 - SW_AVG
}

// ExampleFitNormalizer shows the train-coefficient reuse the paper's testing
// phase requires.
func ExampleFitNormalizer() {
	norm := larpredictor.FitNormalizer([]float64{2, 4, 6, 8})
	fmt.Printf("mean=%.0f\n", norm.Mean)
	fmt.Printf("z(5)=%.3f\n", norm.ApplyValue(5))
	fmt.Printf("round-trip=%.0f\n", norm.Invert(norm.ApplyValue(5)))
	// Output:
	// mean=5
	// z(5)=0.000
	// round-trip=5
}

// ExampleCrossCorrelation shows the multi-resource go/no-go diagnostic.
func ExampleCrossCorrelation() {
	// x leads z by one step exactly.
	x := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	z := []float64{0, 1, -2, 3, -4, 5, -6, 7}
	rho, err := larpredictor.CrossCorrelation(z, x, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("corr(z_t, x_t-1) > 0.9: %v\n", rho > 0.9)
	// Output:
	// corr(z_t, x_t-1) > 0.9: true
}
