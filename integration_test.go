package larpredictor_test

import (
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/preddb"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// TestFullPipelineEndToEnd exercises the paper's Figure-1 architecture as
// one flow: synthetic VM workload → VMM monitoring agent (1-minute samples,
// 5-minute consolidation into an RRD) → profiler extraction → streaming
// LARPredictor → prediction database → Quality Assuror audit.
func TestFullPipelineEndToEnd(t *testing.T) {
	traces := vmtrace.StandardTraceSet(77)
	cfg := monitor.DefaultConfig(vmtrace.VM2)
	cfg.Retention = 48 * time.Hour
	agent, err := monitor.NewAgent(cfg, monitor.TraceSampler(traces))
	if err != nil {
		t.Fatal(err)
	}
	db := preddb.New()
	key := preddb.Key{VM: "VM2", Device: "CPU", Metric: string(vmtrace.CPUUsedSec)}

	online, err := core.NewOnline(core.OnlineConfig{
		Predictor:    core.DefaultConfig(5),
		TrainSize:    60, // five hours of consolidated samples
		AuditWindow:  12,
		MSEThreshold: 0, // QA auditing handled via preddb below
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		lastSeen    = cfg.Start
		pendingFor  time.Time
		hasPending  bool
		pendingVal  float64
		predictions int
	)
	step := cfg.ConsolidationInterval

	// Simulate 20 hours, hour by hour, exactly as monitord does.
	for h := 0; h < 20; h++ {
		if _, err := agent.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		s, err := agent.Profile(monitor.Query{
			VM: vmtrace.VM2, Metric: vmtrace.CPUUsedSec,
			Start: lastSeen.Add(time.Second), End: agent.Now(),
		})
		if err != nil {
			continue
		}
		for i := 0; i < s.Len(); i++ {
			ts := s.TimeAt(i)
			if !ts.After(lastSeen) {
				continue
			}
			v := s.At(i)
			db.PutObservation(key, ts, v)
			if hasPending && ts.Equal(pendingFor) {
				hasPending = false
				_ = pendingVal
			}
			if _, err := online.Observe(v); err != nil {
				t.Fatal(err)
			}
			lastSeen = ts
			if online.Trained() {
				pred, err := online.Forecast()
				if err != nil {
					t.Fatal(err)
				}
				pendingVal = pred.Value
				pendingFor = ts.Add(step)
				hasPending = true
				db.PutPrediction(key, pendingFor, pred.Value, pred.SelectedName)
				predictions++
			}
		}
	}

	if !online.Trained() {
		t.Fatal("streaming predictor never trained over 20 simulated hours")
	}
	if predictions < 100 {
		t.Fatalf("only %d predictions issued", predictions)
	}

	// The prediction DB must hold matched observation/prediction rows.
	recs := db.Range(key, cfg.Start, agent.Now())
	scored := 0
	for _, r := range recs {
		if r.HasObserved && r.HasPredicted {
			scored++
			if r.PredictorName == "" {
				t.Fatal("scored prediction lacks the expert name")
			}
		}
	}
	if scored < 90 {
		t.Fatalf("only %d scored rows in the prediction DB", scored)
	}

	// The QA can audit the pipeline's accuracy. With raw (unnormalized)
	// values the threshold is scale-dependent; here we only require the
	// audit to function and cover its window.
	mse, n, err := db.AuditMSE(key, 24)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("audit covered %d rows, want 24", n)
	}
	if mse < 0 {
		t.Fatalf("audit MSE = %g", mse)
	}

	// The pipeline's forecasts must beat a null model (predicting the
	// overall mean) on the same scored rows — i.e. the plumbing is not
	// just moving numbers around.
	var obsSum float64
	var obs []float64
	var preds []float64
	for _, r := range recs {
		if r.HasObserved && r.HasPredicted {
			obs = append(obs, r.Observed)
			preds = append(preds, r.Predicted)
			obsSum += r.Observed
		}
	}
	mean := obsSum / float64(len(obs))
	var pipeSq, nullSq float64
	for i := range obs {
		pipeSq += (preds[i] - obs[i]) * (preds[i] - obs[i])
		nullSq += (mean - obs[i]) * (mean - obs[i])
	}
	if pipeSq >= nullSq {
		t.Errorf("pipeline MSE %.4g not better than mean-prediction %.4g", pipeSq, nullSq)
	}

	// QA assuror wired to the DB fires a retrain callback when accuracy
	// degrades; with a tiny threshold it must fire here.
	fired := false
	qa, err := preddb.NewAssuror(db, 24, 1e-12, func(k preddb.Key, m float64) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := qa.Audit(key); !ok || !fired {
		t.Error("QA with epsilon threshold did not order a retrain")
	}
}
