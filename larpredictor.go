// Package larpredictor is the public API of the LARPredictor library, a Go
// reproduction of "Adaptive Predictor Integration for System Performance
// Prediction" (Zhang & Figueiredo, IPPS 2007).
//
// The Learning Aided Adaptive Resource Predictor (LARPredictor) integrates a
// pool of time-series prediction experts — LAST, a Yule–Walker-fitted AR
// model, and a sliding-window average in the paper's configuration — and
// *learns* which expert suits the workload of the moment. During training,
// every expert runs in parallel on every window of the training series and
// the per-window winner becomes a class label; windows are normalized,
// PCA-projected to two dimensions, and indexed by a k-NN classifier. At
// prediction time the classifier forecasts the best expert for the current
// window and only that expert runs.
//
// # Quick start
//
//	cfg := larpredictor.DefaultConfig(5) // window m=5, PCA n=2, 3-NN
//	p, err := larpredictor.New(cfg)
//	if err != nil { ... }
//	if err := p.Train(history); err != nil { ... }
//	pred, err := p.Forecast(history[len(history)-5:])
//	fmt.Println(pred.Value, pred.SelectedName)
//
// For streaming workloads, NewOnline wraps the predictor with incremental
// observation, automatic initial training, and QA-triggered retraining. The
// streaming predictor is fault tolerant: failed retrains back off
// exponentially behind a circuit breaker while forecasts degrade down a
// fallback ladder (trained model → windowed cumulative-MSE selector → last
// finite observation) whose rung is reported by Health and
// Prediction.Source. Online.Step fuses one Observe with the following
// Forecast for the common feed-and-predict loop. For benchmarking, Evaluate
// scores the predictor against the perfect-selection oracle (P-LAR), every
// single expert, and the Network Weather Service cumulative-MSE baseline
// (package-level NewCumulativeMSE / NewWindowedMSE).
//
// # Options
//
// New and NewOnline accept functional options that attach optional
// machinery without widening Config:
//
//	reg := larpredictor.NewRegistry()
//	p, err := larpredictor.New(cfg,
//		larpredictor.WithPool(pool),              // custom expert pool
//		larpredictor.WithVote(vote),              // k-NN combination rule
//		larpredictor.WithMetrics(reg),            // instrument counters/latency
//		larpredictor.WithTracer(tracer),          // per-stage spans
//	)
//
// Options win over the corresponding Config fields, which remain supported.
// WithMetrics registers Prometheus-style instrument families on a Registry
// (scrape them via MetricsHandler or Registry.WriteProm); WithTracer
// wraps every pipeline stage — normalize, PCA project, k-NN classify,
// expert forecast, QA audit, train — in a span. Both are nil-safe and cost
// nothing when omitted.
//
// Canonical expert pools are built by BuildPool(windowSize, tier), where
// tier is TierPaper, TierExtended, or TierFull; NewPool assembles a custom
// roster from any Predictor implementations.
package larpredictor

import (
	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/tournament"
)

// Core predictor types, re-exported from the implementation packages. The
// aliases make the internal implementations usable through this package
// without exposing the internal import paths.
type (
	// Config parameterizes a LARPredictor; see DefaultConfig.
	Config = core.Config
	// LARPredictor is the trained adaptive predictor.
	LARPredictor = core.LARPredictor
	// Prediction is a single forecast with the expert that produced it.
	Prediction = core.Prediction
	// EvalResult is the outcome of Evaluate on a test series.
	EvalResult = core.EvalResult
	// OnlineConfig parameterizes the streaming predictor.
	OnlineConfig = core.OnlineConfig
	// Online is the streaming predictor with QA-driven retraining.
	Online = core.Online
	// Health is the streaming predictor's degradation state
	// (Healthy → Tournament → Degraded → Fallback → Failed).
	Health = core.Health
	// HealthStats is a snapshot of the resilience machinery (circuit
	// breaker, retrain backoff, fallback counters).
	HealthStats = core.HealthStats
	// TournamentConfig parameterizes the tournament meta-selector tier;
	// see WithTournament and OnlineConfig.Tournament.
	TournamentConfig = tournament.Config
	// DriftConfig parameterizes proactive drift demotion; see WithDrift
	// and OnlineConfig.Drift.
	DriftConfig = tournament.DriftConfig

	// Predictor is the one-step-ahead expert interface; implement it to
	// add custom experts to a Pool.
	Predictor = predictors.Predictor
	// Pool is an ordered mix-of-experts.
	Pool = predictors.Pool

	// Normalizer holds z-score normalization coefficients.
	Normalizer = timeseries.Normalizer
	// Series is a timestamped, equally-spaced series of observations.
	Series = timeseries.Series
)

// Sentinel errors re-exported for errors.Is tests.
var (
	// ErrNotTrained is returned when forecasting before Train.
	ErrNotTrained = core.ErrNotTrained
	// ErrBadConfig is returned for invalid configuration.
	ErrBadConfig = core.ErrBadConfig
	// ErrNotReady is returned by Online.Forecast before initial training.
	ErrNotReady = core.ErrNotReady
	// ErrFailed is returned by Online.Forecast in the terminal Failed
	// state, after FailureLimit consecutive retrain failures.
	ErrFailed = core.ErrFailed
	// ErrWindowTooShort is returned when a prediction window has fewer
	// samples than the predictor order.
	ErrWindowTooShort = predictors.ErrWindowTooShort
	// ErrUnknownPredictor is returned by NewPredictor for unknown names.
	ErrUnknownPredictor = predictors.ErrUnknownPredictor
)

// Health states of the streaming predictor's fallback ladder.
const (
	// Healthy serves forecasts from the trained LARPredictor.
	Healthy = core.Healthy
	// Tournament serves the context-indexed tournament meta-selector; the
	// rung exists only when the tier is enabled (WithTournament).
	Tournament = core.Tournament
	// Degraded serves the windowed cumulative-MSE selector while retrains
	// back off or the circuit breaker is open.
	Degraded = core.Degraded
	// Fallback serves the last finite observation.
	Fallback = core.Fallback
	// Failed is terminal; Forecast returns ErrFailed.
	Failed = core.Failed
)

// Forecast sources reported in Prediction.Source.
const (
	// SourceLAR marks a forecast served by the trained LARPredictor.
	SourceLAR = core.SourceLAR
	// SourceTournament marks a degraded-mode forecast from the tournament
	// meta-selector tier.
	SourceTournament = core.SourceTournament
	// SourceSelector marks a degraded-mode forecast from the windowed
	// cumulative-MSE selector.
	SourceSelector = core.SourceSelector
	// SourceLastResort marks a last-finite-observation forecast.
	SourceLastResort = core.SourceLastResort
)

// DefaultConfig returns the paper's configuration for a window size m:
// PCA to 2 components, 3 nearest neighbors, and the {LAST, AR(m), SW_AVG(m)}
// expert pool. The paper uses m = 5 for 24-hour traces sampled every five
// minutes and m = 16 for a 7-day trace sampled every thirty minutes.
func DefaultConfig(windowSize int) Config {
	return core.DefaultConfig(windowSize)
}

// Option attaches optional machinery — custom pools, vote strategies,
// metrics, tracing — to New and NewOnline; see WithPool, WithVote,
// WithMetrics, and WithTracer.
type Option = core.Option

// WithPool sets the expert pool, overriding Config.Pool.
func WithPool(p *Pool) Option { return core.WithPool(p) }

// WithVote sets the k-NN neighbor-combination strategy, overriding
// Config.Vote.
func WithVote(v VoteStrategy) Option { return core.WithVote(v) }

// WithTournament enables the tournament meta-selector tier on an Online
// predictor: a branch-predictor-style table of saturating per-expert
// confidence counters, indexed by a hash of the recent regime, that serves
// degraded-mode forecasts between the LARPredictor and the windowed-MSE
// selector. The zero TournamentConfig selects the defaults.
func WithTournament(cfg TournamentConfig) Option { return core.WithTournament(cfg) }

// WithDrift enables proactive drift demotion on an Online predictor: a
// relative CUSUM over the active model's forecast error that demotes a
// stale model to the tournament tier before the QA audit's absolute
// threshold fires. Requires WithTournament. The zero DriftConfig selects
// the defaults.
func WithDrift(cfg DriftConfig) Option { return core.WithDrift(cfg) }

// New validates the configuration and returns an untrained LARPredictor.
func New(cfg Config, opts ...Option) (*LARPredictor, error) {
	return core.New(cfg, opts...)
}

// NewOnline returns a streaming predictor: feed observations with Observe
// (or Step, which also forecasts), read forecasts with Forecast. It trains
// itself after cfg.TrainSize observations and retrains when the QA
// audit-window MSE exceeds cfg.MSEThreshold.
func NewOnline(cfg OnlineConfig, opts ...Option) (*Online, error) {
	return core.NewOnline(cfg, opts...)
}

// PoolTier selects one of the canonical expert rosters for BuildPool:
// TierPaper, TierExtended, or TierFull.
type PoolTier = predictors.PoolTier

// Canonical pool tiers. The tiers nest, preserving class labels.
const (
	// TierPaper is the paper's three-expert pool {LAST, AR(m), SW_AVG(m)}.
	TierPaper = predictors.TierPaper
	// TierExtended adds running average, sliding-window median, exponential
	// smoothing, the tendency model of Yang et al., and polynomial
	// extrapolation (eight experts).
	TierExtended = predictors.TierExtended
	// TierFull adds the MA and ARIMA models from Dinda's host-load study
	// (ten experts); it needs windowSize >= 3.
	TierFull = predictors.TierFull
)

// BuildPool builds the canonical pool for a window size at the given tier,
// appending any extra experts after the tier's roster. It replaces the
// PaperPool/ExtendedPool/FullPool trio.
func BuildPool(windowSize int, tier PoolTier, extra ...Predictor) (*Pool, error) {
	return predictors.BuildPool(windowSize, tier, extra...)
}

// PaperPool returns the paper's three-expert pool {LAST, AR(m), SW_AVG(m)}.
//
// Deprecated: Use BuildPool(windowSize, TierPaper).
func PaperPool(windowSize int) *Pool {
	return predictors.PaperPool(windowSize)
}

// ExtendedPool returns the eight-expert pool: the paper pool plus running
// average, sliding-window median, exponential smoothing, the tendency model
// of Yang et al., and polynomial extrapolation.
//
// Deprecated: Use BuildPool(windowSize, TierExtended).
func ExtendedPool(windowSize int) *Pool {
	return predictors.ExtendedPool(windowSize)
}

// NewPool builds a pool from arbitrary experts, including user
// implementations of Predictor. Pool order defines the class labels.
func NewPool(experts ...Predictor) *Pool {
	return predictors.NewPool(experts...)
}

// RegisterPredictor adds a named expert factory to the global registry used
// by NewPredictor.
func RegisterPredictor(name string, factory func() Predictor) {
	predictors.Register(name, func() predictors.Predictor { return factory() })
}

// NewPredictor constructs a registered expert by name ("LAST", "AR",
// "SW_AVG", "SW_MEDIAN", "EXP_SMOOTH", "TENDENCY", ...).
func NewPredictor(name string) (Predictor, error) {
	return predictors.NewByName(name)
}

// FitNormalizer estimates z-score coefficients from a training series.
func FitNormalizer(train []float64) Normalizer {
	return timeseries.FitNormalizer(train)
}

// NewSeries wraps values in a named Series with a synthetic clock; use the
// timeseries helpers via the Series methods for slicing and validation.
func NewSeries(name string, values []float64) *Series {
	return timeseries.FromValues(name, values)
}

// MSE returns the mean squared error between predictions and observations.
func MSE(pred, obs []float64) (float64, error) {
	return timeseries.MSE(pred, obs)
}
