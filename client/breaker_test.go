package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/obs"
)

// TestBreakerLifecycle drives the state machine with a fake clock:
// closed → open after threshold failures → half-open single probe after
// cooldown → closed on probe success, or open again on probe failure.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	reg := obs.NewRegistry()
	gauge := reg.Gauge1("predictclient_breaker_state", "state")
	b := newBreaker(3, time.Second, gauge)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker blocked call %d: %v", i, err)
		}
		b.failure()
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker not open after threshold: %v", err)
	}
	if gauge.Value() != breakerOpen {
		t.Errorf("gauge = %v, want open", gauge.Value())
	}

	// Cooldown elapses: exactly one probe gets through.
	now = now.Add(time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe blocked: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	if gauge.Value() != breakerHalfOpen {
		t.Errorf("gauge = %v, want half-open", gauge.Value())
	}

	// Probe fails: open again for a fresh cooldown.
	b.failure()
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker closed after failed probe")
	}

	// Next probe succeeds: closed, failures reset.
	now = now.Add(time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe blocked: %v", err)
	}
	b.success()
	if gauge.Value() != breakerClosed {
		t.Errorf("gauge = %v, want closed", gauge.Value())
	}
	for i := 0; i < 2; i++ { // under threshold again: still closed
		b.failure()
	}
	if err := b.allow(); err != nil {
		t.Fatalf("breaker opened below threshold: %v", err)
	}
}

// TestBreakerShedsWithoutRequests: once open, the client fails fast — no
// HTTP traffic reaches a down server until the cooldown admits a probe.
func TestBreakerShedsWithoutRequests(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 1 // isolate breaker behavior from retry loop
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = time.Hour
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}}); err == nil {
			t.Fatal("500 ingest succeeded")
		}
	}
	before := calls.Load()
	for i := 0; i < 5; i++ {
		if _, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}}); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open breaker let call through: %v", err)
		}
	}
	if calls.Load() != before {
		t.Errorf("open breaker issued %d requests", calls.Load()-before)
	}
}

// TestBackpressureDoesNotTrip: 429/503 are an alive server shedding load —
// they must not open the breaker no matter how many arrive.
func TestBackpressureDoesNotTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.BreakerThreshold = 2
	})
	for i := 0; i < 6; i++ {
		_, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}})
		if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("throttle opened the breaker on call %d", i)
		}
	}
}
