package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// ingestRecorder is a fake predictd that records every batch it acks and
// can be told to fail the first N requests.
type ingestRecorder struct {
	mu       sync.Mutex
	batches  [][]Sample
	failNext int
	ts       *httptest.Server
}

func newIngestRecorder(t *testing.T) *ingestRecorder {
	rec := &ingestRecorder{}
	rec.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad ingest body: %v", err)
		}
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if rec.failNext > 0 {
			rec.failNext--
			w.Header().Set(reasonHeader, "shed")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rec.batches = append(rec.batches, req.Samples)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: len(req.Samples)})
	}))
	t.Cleanup(rec.ts.Close)
	return rec
}

func (rec *ingestRecorder) samples() []Sample {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var all []Sample
	for _, b := range rec.batches {
		all = append(all, b...)
	}
	return all
}

// TestIngesterAssignsDistinctSeqs: Adds flow out batched, every sample
// carrying a distinct monotonically-assigned seq, and Close flushes the
// tail.
func TestIngesterAssignsDistinctSeqs(t *testing.T) {
	rec := newIngestRecorder(t)
	c := newTestClient(t, rec.ts.URL, nil)
	ing := c.NewIngester(IngesterConfig{MaxBatch: 4, FlushInterval: time.Hour})
	const n = 10
	for i := 0; i < n; i++ {
		if err := ing.Add(context.Background(), Sample{Stream: "s", TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.samples()
	if len(got) != n {
		t.Fatalf("server saw %d samples, want %d", len(got), n)
	}
	seen := map[uint64]bool{}
	for _, s := range got {
		if s.Seq == 0 || seen[s.Seq] {
			t.Errorf("seq %d zero or repeated", s.Seq)
		}
		seen[s.Seq] = true
	}
	if err := ing.Add(context.Background(), Sample{Stream: "s"}); err != ErrIngesterClosed {
		t.Errorf("Add after Close = %v, want ErrIngesterClosed", err)
	}
}

// TestIngesterRetryKeepsSeqs: the first request fails with a 503; the
// retried batch must carry the same seqs, so a WAL-mode server dedups it.
func TestIngesterRetryKeepsSeqs(t *testing.T) {
	rec := newIngestRecorder(t)
	rec.failNext = 1
	c := newTestClient(t, rec.ts.URL, nil)
	var acked [][]Sample
	var mu sync.Mutex
	ing := c.NewIngester(IngesterConfig{
		MaxBatch:      8,
		FlushInterval: time.Hour,
		OnAck: func(_ *IngestResponse, batch []Sample) {
			mu.Lock()
			acked = append(acked, append([]Sample(nil), batch...))
			mu.Unlock()
		},
	})
	for i := 0; i < 3; i++ {
		if err := ing.Add(context.Background(), Sample{Stream: "s", TS: int64(i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush through one 503: %v", err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.samples()
	if len(got) != 3 {
		t.Fatalf("server saw %d samples, want 3", len(got))
	}
	for i, s := range got {
		if s.Seq != uint64(i+1) {
			t.Errorf("sample %d seq = %d, want %d (keys must survive retries)", i, s.Seq, i+1)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(acked) != 1 || len(acked[0]) != 3 {
		t.Errorf("OnAck saw %v", acked)
	}
}

// TestIngesterOnErrorHandsBackBatch: when retries are exhausted the batch —
// keys intact — is handed to OnError for the caller to re-submit.
func TestIngesterOnErrorHandsBackBatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 2 })
	errs := make(chan []Sample, 1)
	ing := c.NewIngester(IngesterConfig{
		MaxBatch:      1,
		FlushInterval: time.Hour,
		OnError:       func(_ error, batch []Sample) { errs <- append([]Sample(nil), batch...) },
	})
	defer ing.Close()
	if err := ing.Add(context.Background(), Sample{Stream: "s", Value: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-errs:
		if len(batch) != 1 || batch[0].Seq != 1 {
			t.Errorf("OnError batch = %+v", batch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError never called")
	}
}

// TestIngesterPeriodicFlush: without reaching MaxBatch, the interval alone
// pushes samples out.
func TestIngesterPeriodicFlush(t *testing.T) {
	rec := newIngestRecorder(t)
	c := newTestClient(t, rec.ts.URL, nil)
	ing := c.NewIngester(IngesterConfig{MaxBatch: 1000, FlushInterval: 10 * time.Millisecond})
	defer ing.Close()
	if err := ing.Add(context.Background(), Sample{Stream: "s", Value: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(rec.samples()) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("periodic flush never fired")
}
