package client

import (
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/obs"
)

// Breaker states, exported through the predictclient_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is a half-open circuit breaker over consecutive transport/5xx
// failures. Explicit backpressure (429/503) deliberately does not count:
// a daemon shedding load is alive, and backoff alone is the right response.
//
// Closed: all calls pass. After threshold consecutive failures it opens:
// calls fail fast with ErrBreakerOpen for cooldown. Then it half-opens and
// admits exactly one probe; the probe's outcome closes it again or re-opens
// it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam

	state    int
	failures int
	openedAt time.Time
	probing  bool

	gauge *obs.Gauge
}

func newBreaker(threshold int, cooldown time.Duration, gauge *obs.Gauge) *breaker {
	b := &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, gauge: gauge}
	gauge.Set(breakerClosed)
	return b
}

// allow reports whether a call may proceed, admitting the single half-open
// probe when the cooldown has elapsed.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen // one probe at a time
		}
		b.probing = true
		return nil
	}
}

// success records a completed round trip (any definitive server response).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.setState(breakerClosed)
}

// failure records a transport or 5xx failure.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.probing = false
		b.openedAt = b.now()
		b.setState(breakerOpen)
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.setState(breakerOpen)
		}
	}
}

func (b *breaker) setState(s int) {
	if b.state != s {
		b.state = s
		b.gauge.Set(float64(s))
	}
}
