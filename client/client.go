// Package client is the resilient Go client for predictd. It wraps the
// HTTP/JSON API with the retry discipline a production caller needs:
// exponential backoff with full jitter, Retry-After honored as a floor on
// 429/503, a per-attempt request deadline, and a half-open circuit breaker
// that sheds calls while the daemon is down instead of hammering it.
//
// Retried ingests are safe to repeat: the Ingester assigns each sample a
// client-side (source, seq) idempotency key that stays fixed across
// retries, and a predictd running with -durability=wal applies each key
// exactly once. That makes every retryable failure — including a 503 with
// reason "timeout", where the first attempt may still have committed
// server-side — safe to resend blindly.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acis-lab/larpredictor/internal/obs"
)

// Reason labels for the retries counter; 503 responses carry the server's
// X-Predictd-Reason verbatim (drain, shed, timeout).
const (
	reasonNetwork     = "network"
	reasonThrottle    = "throttle"
	reasonUnavailable = "unavailable"
	reasonServer      = "server"
)

// reasonHeader and routeHeader mirror the server's header names without
// importing the server package: the wire contract is the header name, not
// the Go identifier.
const (
	reasonHeader = "X-Predictd-Reason"
	routeHeader  = "X-Predictd-Route"
)

// ErrBreakerOpen is returned without issuing a request while the circuit
// breaker is open. The caller may retry later; the breaker half-opens after
// its cooldown and lets one probe through.
var ErrBreakerOpen = errors.New("predictclient: circuit breaker open")

// StatusError is a terminal (non-retryable) HTTP failure, or the last
// retryable failure once attempts are exhausted.
type StatusError struct {
	Code   int
	Reason string // X-Predictd-Reason when the server sent one
	// ErrCode is the machine-readable code from the server's unified error
	// envelope ({"error":{"code":...}}), when the body carried one. Branch
	// on it rather than on Body or Reason.
	ErrCode string
	Body    string
}

func (e *StatusError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("predictclient: HTTP %d (reason %s): %s", e.Code, e.Reason, e.Body)
	}
	return fmt.Sprintf("predictclient: HTTP %d: %s", e.Code, e.Body)
}

// statusError builds a StatusError from a response, extracting the
// envelope's machine code when the body carries one.
func statusError(resp *http.Response, raw []byte) *StatusError {
	se := &StatusError{Code: resp.StatusCode, Reason: resp.Header.Get(reasonHeader), Body: string(raw)}
	var env struct {
		Error *ErrorBody `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != nil {
		se.ErrCode = env.Error.Code
	}
	return se
}

// Config shapes a Client. The zero value of every field has a sensible
// default; only BaseURL (or Endpoints) is required.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8100".
	BaseURL string
	// Endpoints lists additional daemon roots for a clustered deployment.
	// The client sticks to one endpoint while it answers, rotates to the
	// next on transport failures and 5xx responses, and honors the
	// X-Predictd-Route hint a node sends when another node owns the
	// streams being written — so steady-state traffic converges on the
	// owner without a load balancer.
	Endpoints []string
	// HTTPClient overrides the transport; per-attempt deadlines come from
	// RequestTimeout, so the default client carries no global timeout.
	HTTPClient *http.Client
	// Source is the client identity half of every idempotency key. Leave
	// empty only for unkeyed (at-least-once) ingest.
	Source string
	// Headers are added to every request verbatim. predictd's cluster
	// layer marks inter-node traffic (forwarded and replicated batches)
	// this way.
	Headers map[string]string

	// RequestTimeout bounds each attempt (default 5s).
	RequestTimeout time.Duration
	// MaxAttempts bounds the retry loop: 0 means the default (8), negative
	// means retry forever (until ctx cancels).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the full-jitter schedule: attempt n
	// sleeps uniform(0, min(MaxBackoff, BaseBackoff<<n)), floored by any
	// Retry-After the server sent. Defaults 50ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// BreakerThreshold consecutive transport/5xx failures open the breaker
	// (default 5; negative disables the breaker). BreakerCooldown is how
	// long it stays open before half-opening one probe (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Metrics, when set, receives predictclient_retries_total{reason} and
	// predictclient_breaker_state (0 closed, 1 half-open, 2 open).
	Metrics *obs.Registry

	// Seed fixes the jitter RNG for deterministic tests; 0 seeds from the
	// clock.
	Seed int64
}

// Client is a predictd API client. It is safe for concurrent use.
type Client struct {
	cfg       Config
	httpc     *http.Client
	breaker   *breaker
	endpoints []string
	cur       atomic.Uint32 // index of the currently preferred endpoint

	retries *obs.CounterVec

	rngMu sync.Mutex
	rng   *rand.Rand

	// etagMu guards the Forecasts conditional-get cache: requested stream
	// set → last ETag and the response it validated.
	etagMu sync.Mutex
	etags  map[string]etagEntry
}

// New validates cfg, fills defaults, and returns a ready Client.
func New(cfg Config) (*Client, error) {
	endpoints := make([]string, 0, 1+len(cfg.Endpoints))
	if cfg.BaseURL != "" {
		endpoints = append(endpoints, cfg.BaseURL)
	}
	for _, e := range cfg.Endpoints {
		dup := false
		for _, have := range endpoints {
			if have == e {
				dup = true
				break
			}
		}
		if e != "" && !dup {
			endpoints = append(endpoints, e)
		}
	}
	if len(endpoints) == 0 {
		return nil, errors.New("predictclient: Config.BaseURL or Config.Endpoints is required")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		cfg:       cfg,
		httpc:     cfg.HTTPClient,
		endpoints: endpoints,
		rng:       rand.New(rand.NewSource(seed)),
	}
	if cfg.Metrics != nil {
		c.retries = cfg.Metrics.Counter("predictclient_retries_total",
			"Retried predictd requests by retry reason.", "reason")
	}
	if cfg.BreakerThreshold > 0 {
		var gauge *obs.Gauge
		if cfg.Metrics != nil {
			gauge = cfg.Metrics.Gauge1("predictclient_breaker_state",
				"Circuit breaker state: 0 closed, 1 half-open, 2 open.")
		}
		c.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, gauge)
	}
	return c, nil
}

// Ingest posts one batch and returns the server's accounting. Keyed samples
// (Seq != 0 with a Source on the client) retried through this method are
// applied exactly once by a WAL-mode server; the response's Deduped counts
// the replays it recognized.
func (c *Client) Ingest(ctx context.Context, samples []Sample) (*IngestResponse, error) {
	return c.IngestFrom(ctx, c.cfg.Source, samples)
}

// IngestFrom is Ingest with an explicit source identity — the cluster
// layer forwards and replicates batches on behalf of the original client,
// so the idempotency keys must carry that client's source, not the
// forwarding node's.
func (c *Client) IngestFrom(ctx context.Context, source string, samples []Sample) (*IngestResponse, error) {
	req := IngestRequest{Source: source, Samples: samples}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp IngestResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ingest", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Forecast fetches the stream's latest forecast document.
func (c *Client) Forecast(ctx context.Context, stream string) (*ForecastResponse, error) {
	var resp ForecastResponse
	if err := c.do(ctx, http.MethodGet, "/v1/forecast/"+stream, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz reports whether the daemon is accepting work.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// respMeta is the successful response's metadata — the conditional-get
// machinery needs the status (200 vs 304) and headers (ETag).
type respMeta struct {
	status int
	header http.Header
}

// do runs the retry loop around one logical request. The request body is a
// byte slice (not a Reader) precisely so every attempt resends identical
// bytes — idempotency keys must not drift between attempts.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	_, err := c.doHdr(ctx, method, path, body, nil, out)
	return err
}

// doHdr is do with extra request headers and the successful response's
// metadata returned — the conditional-get read path sends If-None-Match and
// inspects ETag/304 this way.
func (c *Client) doHdr(ctx context.Context, method, path string, body []byte,
	hdr map[string]string, out any) (respMeta, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				if lastErr != nil {
					return respMeta{}, fmt.Errorf("%w (last failure: %v)", err, lastErr)
				}
				return respMeta{}, err
			}
		}
		meta, retryable, retryAfter, err := c.attempt(ctx, method, path, body, hdr, out)
		if err == nil {
			return meta, nil
		}
		lastErr = err
		if !retryable {
			return respMeta{}, err
		}
		if c.cfg.MaxAttempts > 0 && attempt+1 >= c.cfg.MaxAttempts {
			return respMeta{}, fmt.Errorf("predictclient: %d attempts exhausted: %w", c.cfg.MaxAttempts, err)
		}
		c.retries.WithLabels(retryReason(err)).Inc()
		if werr := c.sleep(ctx, c.backoff(attempt, retryAfter)); werr != nil {
			return respMeta{}, fmt.Errorf("%w (last failure: %v)", werr, err)
		}
	}
}

// endpoint returns the currently preferred endpoint and its index.
func (c *Client) endpoint() (string, uint32) {
	idx := c.cur.Load() % uint32(len(c.endpoints))
	return c.endpoints[idx], idx
}

// rotate advances from the endpoint at idx to the next one, unless another
// goroutine already moved on — failures on a stale endpoint must not spin
// the preference past endpoints nobody has tried.
func (c *Client) rotate(idx uint32) {
	if len(c.endpoints) > 1 {
		c.cur.CompareAndSwap(idx, idx+1)
	}
}

// noteRoute adopts a server routing hint: when a response names the node
// that actually owns the streams (X-Predictd-Route), and that node is one
// of the configured endpoints, subsequent requests go there directly.
func (c *Client) noteRoute(hint string) {
	if hint == "" || len(c.endpoints) < 2 {
		return
	}
	for i, e := range c.endpoints {
		if strings.Contains(e, hint) {
			c.cur.Store(uint32(i))
			return
		}
	}
}

// attempt issues one HTTP round trip under the per-attempt deadline and
// classifies the outcome: (meta, retryable, server-requested floor, error).
// A transport failure or 5xx rotates the preferred endpoint so the retry
// lands on the next cluster node.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte,
	hdr map[string]string, out any) (respMeta, bool, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	base, epIdx := c.endpoint()
	req, err := http.NewRequestWithContext(actx, method, base+path, rd)
	if err != nil {
		return respMeta{}, false, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range c.cfg.Headers {
		req.Header.Set(k, v)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		// Transport failure or per-attempt deadline: nothing definitive
		// was heard from the server, so retry (the idempotency keys make
		// even a half-applied ingest safe to resend). Stop retrying when
		// the caller's own ctx is the one that expired.
		c.breakerFailure()
		c.rotate(epIdx)
		if ctx.Err() != nil {
			return respMeta{}, false, 0, ctx.Err()
		}
		return respMeta{}, true, 0, fmt.Errorf("predictclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	meta := respMeta{status: resp.StatusCode, header: resp.Header}

	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		c.breakerSuccess()
		c.noteRoute(resp.Header.Get(routeHeader))
		if out != nil {
			if derr := json.Unmarshal(raw, out); derr != nil {
				return respMeta{}, false, 0, fmt.Errorf("predictclient: decode %s response: %w", path, derr)
			}
		}
		return meta, false, 0, nil
	case resp.StatusCode == http.StatusNotModified:
		// Conditional get hit: the caller's cached copy is still current.
		// Nothing to decode.
		c.breakerSuccess()
		c.noteRoute(resp.Header.Get(routeHeader))
		return meta, false, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// Explicit throttling. The daemon is up and talking, so this does
		// not trip the breaker and there is no reason to change endpoints;
		// Retry-After floors the next sleep.
		c.breakerSuccess()
		return respMeta{}, true, parseRetryAfter(resp.Header.Get("Retry-After")), statusError(resp, raw)
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Explicit backpressure — no breaker trip — but a draining,
		// shedding, or forward-failing node is a reason to try a peer.
		c.breakerSuccess()
		c.rotate(epIdx)
		return respMeta{}, true, parseRetryAfter(resp.Header.Get("Retry-After")), statusError(resp, raw)
	case resp.StatusCode >= 500:
		c.breakerFailure()
		c.rotate(epIdx)
		return respMeta{}, true, 0, statusError(resp, raw)
	default:
		// 4xx: the request itself is wrong; retrying cannot fix it.
		c.breakerSuccess()
		return respMeta{}, false, 0, statusError(resp, raw)
	}
}

func (c *Client) breakerSuccess() {
	if c.breaker != nil {
		c.breaker.success()
	}
}

func (c *Client) breakerFailure() {
	if c.breaker != nil {
		c.breaker.failure()
	}
}

// backoff computes the full-jitter sleep for the given attempt, floored by
// the server's Retry-After when one was sent.
func (c *Client) backoff(attempt int, floor time.Duration) time.Duration {
	ceil := c.cfg.MaxBackoff
	if shifted := c.cfg.BaseBackoff << uint(attempt); attempt < 32 && shifted < ceil && shifted > 0 {
		ceil = shifted
	}
	c.rngMu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.rngMu.Unlock()
	if d < floor {
		d = floor
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryReason maps a retryable failure to its metrics label.
func retryReason(err error) string {
	var serr *StatusError
	if !errors.As(err, &serr) {
		return reasonNetwork
	}
	switch {
	case serr.Code == http.StatusTooManyRequests:
		return reasonThrottle
	case serr.Code == http.StatusServiceUnavailable:
		if serr.Reason != "" {
			return serr.Reason
		}
		return reasonUnavailable
	default:
		return reasonServer
	}
}

// parseRetryAfter reads both Retry-After forms RFC 9110 §10.2.3 allows:
// delay-seconds ("120") and HTTP-date ("Fri, 08 Aug 2026 12:00:00 GMT"),
// the latter floored at zero when the date has already passed. Garbage
// parses as no floor.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// ---- wire documents ----
// These mirror predictd's JSON contract field-for-field; the client keeps
// its own copies so importing it never drags in server internals.

// Sample is one observation. Seq, with the client's Source, is its
// idempotency key; zero means unkeyed (at-least-once).
type Sample struct {
	Stream string  `json:"stream"`
	TS     int64   `json:"ts,omitempty"`
	Value  float64 `json:"value"`
	Seq    uint64  `json:"seq,omitempty"`
}

// IngestRequest is the POST /v1/ingest batch form.
type IngestRequest struct {
	Source  string   `json:"source,omitempty"`
	Samples []Sample `json:"samples,omitempty"`
}

// ErrorBody is the machine-readable error inside predictd's unified error
// envelope ({"error":{"code":"…","message":"…"}}).
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// IngestResponse is the server's ingest accounting. Error follows the
// unified envelope's body shape on failure responses.
type IngestResponse struct {
	Accepted int        `json:"accepted"`
	Rejected int        `json:"rejected,omitempty"`
	Deduped  int        `json:"deduped,omitempty"`
	Error    *ErrorBody `json:"error,omitempty"`
}

// ForecastDoc is the forecast half of a forecast response.
type ForecastDoc struct {
	TS          int64   `json:"ts"`
	Value       float64 `json:"value"`
	Normalized  float64 `json:"normalized"`
	Expert      string  `json:"expert,omitempty"`
	StdEstimate float64 `json:"std_estimate,omitempty"`
	Source      string  `json:"source,omitempty"`
}

// ForecastResponse is the GET /v1/forecast/{stream} document.
type ForecastResponse struct {
	Stream    string       `json:"stream"`
	Health    string       `json:"health"`
	LastTS    int64        `json:"last_ts"`
	LastValue float64      `json:"last_value"`
	LastError string       `json:"last_error,omitempty"`
	Forecast  *ForecastDoc `json:"forecast,omitempty"`
	Poisoned  bool         `json:"poisoned,omitempty"`
	Fault     string       `json:"fault,omitempty"`
	Processed uint64       `json:"processed"`
	Applied   uint64       `json:"applied,omitempty"`
}
