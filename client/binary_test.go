package client

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/wire"
)

// binTestServer runs a real wire.Server whose ingest callback is the test's.
func binTestServer(t *testing.T, ingest func(source string, samples []wire.Sample) wire.Ack) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := wire.NewServer(wire.ServerConfig{Ingest: ingest, Logw: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// httpIngestServer is an HTTP fallback target that acks every batch with
// 202 and records the samples it saw.
func httpIngestServer(t *testing.T) (*httptest.Server, *atomic.Int32, func() []Sample) {
	t.Helper()
	var hits atomic.Int32
	var mu sync.Mutex
	var got []Sample
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fallback body: %v", err)
		}
		mu.Lock()
		got = append(got, req.Samples...)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: len(req.Samples)})
	}))
	t.Cleanup(ts.Close)
	samples := func() []Sample {
		mu.Lock()
		defer mu.Unlock()
		return append([]Sample(nil), got...)
	}
	return ts, &hits, samples
}

func binTestClient(t *testing.T, baseURL string, threshold int) *Client {
	t.Helper()
	return newTestClient(t, baseURL, func(cfg *Config) {
		cfg.BreakerThreshold = threshold
	})
}

// assertBreakerClosed fails unless the client's breaker is closed with a
// clean failure count — the invariant the binary transport must preserve.
func assertBreakerClosed(t *testing.T, c *Client, when string) {
	t.Helper()
	c.breaker.mu.Lock()
	state, failures := c.breaker.state, c.breaker.failures
	c.breaker.mu.Unlock()
	if state != breakerClosed || failures != 0 {
		t.Fatalf("%s: breaker state=%d failures=%d, want closed with 0", when, state, failures)
	}
}

// TestBinaryIngesterDeliversOverWire: the happy path never touches HTTP and
// every sample arrives exactly once with its assigned key.
func TestBinaryIngesterDeliversOverWire(t *testing.T) {
	var mu sync.Mutex
	var got []wire.Sample
	var sources []string
	addr := binTestServer(t, func(source string, samples []wire.Sample) wire.Ack {
		mu.Lock()
		got = append(got, samples...)
		sources = append(sources, source)
		mu.Unlock()
		return wire.Ack{Status: wire.StatusOK, Accepted: len(samples)}
	})
	ts, hits, _ := httpIngestServer(t)
	c := binTestClient(t, ts.URL, 1)

	var acked atomic.Int32
	bi, err := c.NewBinaryIngester(BinaryIngesterConfig{
		Addr:     addr,
		MaxBatch: 8,
		OnAck: func(resp *IngestResponse, batch []Sample) {
			acked.Add(int32(resp.Accepted))
		},
		OnError:    func(err error, batch []Sample) { t.Errorf("unexpected OnError: %v", err) },
		OnFallback: func(err error) { t.Errorf("unexpected fallback: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := bi.Add(context.Background(), Sample{Stream: "bin/happy", TS: int64(i + 1), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bi.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := bi.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("server received %d samples, want %d", len(got), n)
	}
	seen := map[uint64]bool{}
	for _, s := range got {
		if s.Seq == 0 || seen[s.Seq] {
			t.Fatalf("sample seq %d missing or duplicated", s.Seq)
		}
		seen[s.Seq] = true
	}
	for _, src := range sources {
		if src != "test-src" {
			t.Fatalf("batch source = %q, want test-src", src)
		}
	}
	if int(acked.Load()) != n {
		t.Fatalf("OnAck accepted total = %d, want %d", acked.Load(), n)
	}
	if hits.Load() != 0 {
		t.Fatalf("HTTP fallback served %d requests on the happy path", hits.Load())
	}
}

// TestBinaryIngesterDialFailureFallsBackToHTTP: a refused binary listener
// must not trip the breaker — the HTTP listener is fine and carries the
// batch with the same keys.
func TestBinaryIngesterDialFailureFallsBackToHTTP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	ts, hits, httpSamples := httpIngestServer(t)
	c := binTestClient(t, ts.URL, 1) // threshold 1: a single failure() would open it

	var fallbacks atomic.Int32
	bi, err := c.NewBinaryIngester(BinaryIngesterConfig{
		Addr:        deadAddr,
		MaxBatch:    4,
		DialTimeout: 500 * time.Millisecond,
		OnFallback:  func(err error) { fallbacks.Add(1) },
		OnError:     func(err error, batch []Sample) { t.Errorf("unexpected OnError: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := bi.Add(context.Background(), Sample{Stream: "bin/fallback", TS: int64(i + 1), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bi.Flush(context.Background()); err != nil {
		t.Fatalf("flush over fallback: %v", err)
	}
	bi.Close()
	if hits.Load() == 0 {
		t.Fatal("HTTP fallback never received the batch")
	}
	if fallbacks.Load() == 0 {
		t.Fatal("OnFallback never observed the transition")
	}
	got := httpSamples()
	if len(got) != 4 {
		t.Fatalf("HTTP received %d samples, want 4", len(got))
	}
	for i, s := range got {
		if s.Seq != uint64(i+1) {
			t.Fatalf("HTTP sample %d carries seq %d, want %d (keys must survive fallback)", i, s.Seq, i+1)
		}
	}
	assertBreakerClosed(t, c, "after dial-refused fallback")
}

// resetWireServer speaks just enough of the protocol to accept the
// handshake, read frames, and then drop the connection without acking —
// the connection-reset case the breaker fix is about.
func resetWireServer(t *testing.T, framesBeforeClose int) (string, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var conns atomic.Int32
	go func() {
		for {
			conn, aerr := ln.Accept()
			if aerr != nil {
				return
			}
			conns.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				hs := make([]byte, len(wire.Magic)+2)
				if _, rerr := io.ReadFull(conn, hs); rerr != nil {
					return
				}
				reply := append([]byte(nil), wire.Magic[:]...)
				reply = binary.LittleEndian.AppendUint16(reply, wire.MaxVersion)
				if _, werr := conn.Write(reply); werr != nil {
					return
				}
				var buf []byte
				for i := 0; i < framesBeforeClose; i++ {
					var rerr error
					_, buf, rerr = durable.ReadRecord(conn, buf, wire.DefaultMaxFrame)
					if rerr != nil {
						return
					}
				}
				// Close without acking: the client sees EOF/reset with the
				// batch outcome unknown.
			}(conn)
		}
	}()
	return ln.Addr().String(), &conns
}

// TestBinaryIngesterConnResetNeverTripsBreaker is the regression test for
// the breaker rule: a reset on an established binary connection is
// backpressure-class (like a 503), not a breaker failure. With threshold 1,
// a single mis-counted reset would open the breaker and shed the HTTP
// fallback — the batch would never land.
func TestBinaryIngesterConnResetNeverTripsBreaker(t *testing.T) {
	addr, conns := resetWireServer(t, 1) // every conn dies after one frame
	ts, hits, httpSamples := httpIngestServer(t)
	c := binTestClient(t, ts.URL, 1)

	bi, err := c.NewBinaryIngester(BinaryIngesterConfig{
		Addr:        addr,
		MaxBatch:    4,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := bi.Add(context.Background(), Sample{Stream: "bin/reset", TS: int64(i + 1), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bi.Flush(context.Background()); err != nil {
		t.Fatalf("flush after resets: %v", err)
	}
	bi.Close()
	// The ingester sent on conn 1, lost it, redialed once (conn 2), lost
	// that too, then delivered over HTTP.
	if conns.Load() < 2 {
		t.Fatalf("ingester dialed %d times, want a redial before HTTP fallback", conns.Load())
	}
	if hits.Load() == 0 {
		t.Fatal("batch never reached the HTTP fallback after binary resets")
	}
	if got := httpSamples(); len(got) != 4 {
		t.Fatalf("HTTP received %d samples, want 4", len(got))
	}
	assertBreakerClosed(t, c, "after binary connection resets")
}

// TestBinaryIngesterBackpressureAckNeverTripsBreaker: Backlog acks are the
// daemon alive and talking — with threshold 1 they must count as breaker
// successes while the batch is retried (binary once, then the HTTP retry
// loop, which owns backoff).
func TestBinaryIngesterBackpressureAckNeverTripsBreaker(t *testing.T) {
	var binAcks atomic.Int32
	addr := binTestServer(t, func(source string, samples []wire.Sample) wire.Ack {
		binAcks.Add(1)
		return wire.Ack{Status: wire.StatusBacklog, Msg: "ingest backlog"}
	})
	ts, hits, httpSamples := httpIngestServer(t)
	c := binTestClient(t, ts.URL, 1)

	var fallbackErr error
	bi, err := c.NewBinaryIngester(BinaryIngesterConfig{
		Addr:       addr,
		MaxBatch:   4,
		OnFallback: func(err error) { fallbackErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := bi.Add(context.Background(), Sample{Stream: "bin/backlog", TS: int64(i + 1), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bi.Flush(context.Background()); err != nil {
		t.Fatalf("flush under backpressure: %v", err)
	}
	bi.Close()
	if binAcks.Load() < 2 {
		t.Fatalf("binary transport acked %d times, want pipelined send + one synchronous retry", binAcks.Load())
	}
	if hits.Load() == 0 || len(httpSamples()) != 4 {
		t.Fatalf("backpressured batch must land via HTTP (hits=%d, samples=%d)", hits.Load(), len(httpSamples()))
	}
	if fallbackErr == nil {
		t.Fatal("OnFallback never reported the backpressure transition")
	}
	assertBreakerClosed(t, c, "after backlog acks")
}
