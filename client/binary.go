package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/wire"
)

// BinaryIngesterConfig shapes a BinaryIngester; every zero field has a
// default except Addr, which is required.
type BinaryIngesterConfig struct {
	// Addr is the daemon's binary ingest listener (-binary-listen).
	Addr string
	// MaxBatch is the largest batch one frame carries (default 64).
	MaxBatch int
	// FlushInterval bounds how long a sample waits for batch-mates
	// (default 100ms).
	FlushInterval time.Duration
	// QueueDepth is the Add buffer; Add blocks (honoring its ctx) when the
	// worker falls behind (default 1024).
	QueueDepth int
	// Window caps unacknowledged frames pipelined on the wire (default 8).
	Window int
	// DialTimeout bounds dial + handshake per connection attempt (default 5s).
	DialTimeout time.Duration
	// ReprobeInterval is how long the ingester stays on the HTTP fallback
	// after the binary transport fails before probing it again (default 5s).
	ReprobeInterval time.Duration
	// OnAck, when set, observes every acknowledged batch (both transports).
	OnAck func(resp *IngestResponse, batch []Sample)
	// OnError, when set, observes a batch both transports gave up on — the
	// samples (keys included) are handed back so the caller can re-submit
	// them without minting new keys.
	OnError func(err error, batch []Sample)
	// OnFallback, when set, observes each binary→HTTP transition with the
	// error that caused it.
	OnFallback func(err error)
}

// BinaryIngester batches samples and ships them over the framed binary
// ingest protocol, pipelining up to Window frames per connection. It assigns
// the same (source, seq) idempotency keys as the HTTP Ingester, so when the
// binary transport fails — dial refused, connection reset, version
// rejection — it falls back to the client's HTTP retry loop and resends the
// very same batches: the server dedups whatever portion already landed.
// The binary listener is re-probed every ReprobeInterval while on fallback.
//
// Breaker discipline: the shared circuit breaker exists to shed calls while
// the daemon is down, and the binary transport reports into it accordingly.
// Any ack — including Backlog and Draining backpressure — proves the daemon
// alive and counts as breaker success, exactly like HTTP 429/503. A
// connection reset or EOF on an established binary connection is also
// treated like a 503 (backpressure, not death): it never trips the breaker,
// because the HTTP listener may be healthy and the fallback path must not
// start life shed. Only the HTTP fallback's own transport failures count
// against the breaker.
type BinaryIngester struct {
	c   *Client
	cfg BinaryIngesterConfig

	mu     sync.Mutex
	seq    uint64
	closed bool

	in      chan Sample
	flushes chan chan error
	quit    chan struct{}
	done    chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc

	// Worker-owned state (the run goroutine is the only toucher).
	conn     *wire.Conn
	inflight []binInflight
	probeAt  time.Time // while before this instant, ship over HTTP without dialing
	wbuf     []wire.Sample
}

// binInflight pairs a pipelined frame's ack handle with the batch it
// carried, so an unacked or backpressured batch can be resent verbatim.
type binInflight struct {
	p     *wire.Pending
	batch []Sample
}

// NewBinaryIngester starts the background flusher on the binary transport.
// Callers must Close it to flush the tail.
func (c *Client) NewBinaryIngester(cfg BinaryIngesterConfig) (*BinaryIngester, error) {
	if cfg.Addr == "" {
		return nil, errors.New("predictclient: BinaryIngesterConfig.Addr is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 100 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReprobeInterval <= 0 {
		cfg.ReprobeInterval = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	bi := &BinaryIngester{
		c:       c,
		cfg:     cfg,
		in:      make(chan Sample, cfg.QueueDepth),
		flushes: make(chan chan error),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	go bi.run()
	return bi, nil
}

// Add enqueues one observation, assigning its idempotency seq. It blocks
// when the queue is full until the worker catches up or ctx cancels.
func (bi *BinaryIngester) Add(ctx context.Context, s Sample) error {
	bi.mu.Lock()
	if bi.closed {
		bi.mu.Unlock()
		return ErrIngesterClosed
	}
	bi.seq++
	s.Seq = bi.seq
	bi.mu.Unlock()
	select {
	case bi.in <- s:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-bi.done:
		return ErrIngesterClosed
	}
}

// Flush ships everything queued so far, waits for every in-flight frame to
// settle, and returns the first terminal failure of that flush.
func (bi *BinaryIngester) Flush(ctx context.Context) error {
	res := make(chan error, 1)
	select {
	case bi.flushes <- res:
	case <-ctx.Done():
		return ctx.Err()
	case <-bi.done:
		return ErrIngesterClosed
	}
	select {
	case err := <-res:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes the remaining queue, settles all in-flight frames, and
// stops the worker. After Close, Add and Flush fail with ErrIngesterClosed.
func (bi *BinaryIngester) Close() error {
	bi.mu.Lock()
	if bi.closed {
		bi.mu.Unlock()
		<-bi.done
		return nil
	}
	bi.closed = true
	bi.mu.Unlock()
	close(bi.quit)
	<-bi.done
	bi.cancel()
	return nil
}

func (bi *BinaryIngester) source() string { return bi.c.cfg.Source }

func (bi *BinaryIngester) run() {
	defer func() {
		if bi.conn != nil {
			bi.conn.Close()
		}
		close(bi.done)
	}()
	ticker := time.NewTicker(bi.cfg.FlushInterval)
	defer ticker.Stop()
	var batch []Sample
	send := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := bi.ship(batch)
		batch = nil
		return err
	}
	for {
		select {
		case <-bi.quit:
			for drain := true; drain; {
				select {
				case s := <-bi.in:
					batch = append(batch, s)
					if len(batch) >= bi.cfg.MaxBatch {
						send()
					}
				default:
					drain = false
				}
			}
			send()
			bi.settle()
			return
		case s := <-bi.in:
			batch = append(batch, s)
			if len(batch) >= bi.cfg.MaxBatch {
				send()
			}
		case <-ticker.C:
			send()
		case res := <-bi.flushes:
			var ferr error
			for {
				fill := true
				for fill && len(batch) < bi.cfg.MaxBatch {
					select {
					case s := <-bi.in:
						batch = append(batch, s)
					default:
						fill = false
					}
				}
				if len(batch) == 0 {
					break
				}
				if err := send(); err != nil && ferr == nil {
					ferr = err
				}
			}
			if err := bi.settle(); err != nil && ferr == nil {
				ferr = err
			}
			res <- ferr
		}
	}
}

// ship sends one batch, pipelining over the binary transport when it is up
// and falling back to HTTP otherwise. Returns the batch's terminal error
// (nil when acked or still pipelined — pipelined outcomes surface at the
// next settle point).
func (bi *BinaryIngester) ship(batch []Sample) error {
	if bi.conn == nil {
		if time.Now().Before(bi.probeAt) {
			return bi.shipHTTP(batch)
		}
		if err := bi.dialBinary(); err != nil {
			// The binary listener refused or failed the handshake; the HTTP
			// listener may be fine — its own attempt drives the breaker.
			bi.fallback(err)
			return bi.shipHTTP(batch)
		}
	}
	// Bound our FIFO to the window by settling the oldest frame first; the
	// wire window has a free slot whenever our FIFO does, so Send below
	// cannot block indefinitely.
	for len(bi.inflight) >= bi.cfg.Window {
		if err := bi.reapHead(); err != nil {
			return err
		}
		if bi.conn == nil {
			// reapHead recovered over HTTP; this batch follows it there.
			return bi.shipHTTP(batch)
		}
	}
	p, err := bi.conn.Send(bi.ctx, bi.source(), bi.wireBatch(batch))
	if err != nil {
		// Reset/EOF on an established connection: treated like a 503 — the
		// daemon may just be cycling the listener — so no breaker trip; the
		// unacked frames and this batch are resent in order.
		return bi.recoverAll(append(bi.takeUnsettled(), batch))
	}
	bi.inflight = append(bi.inflight, binInflight{p: p, batch: batch})
	return nil
}

// settle waits out every pipelined frame and resends whatever did not land.
func (bi *BinaryIngester) settle() error {
	return bi.recoverAll(bi.takeUnsettled())
}

// reapHead settles the oldest in-flight frame. A retryable ack or a dead
// connection forces full in-order recovery of everything behind it.
func (bi *BinaryIngester) reapHead() error {
	head := bi.inflight[0]
	ack, err := head.p.Wait(bi.ctx)
	if err == nil && bi.settleAck(ack, head.batch) {
		n := copy(bi.inflight, bi.inflight[1:])
		bi.inflight[n] = binInflight{}
		bi.inflight = bi.inflight[:n]
		return nil
	}
	resend := [][]Sample{head.batch}
	rest := bi.inflight[1:]
	bi.inflight = bi.inflight[:0]
	for _, e := range rest {
		a, werr := e.p.Wait(bi.ctx)
		if werr != nil || !bi.settleAck(a, e.batch) {
			resend = append(resend, e.batch)
		}
	}
	return bi.recoverAll(resend)
}

// takeUnsettled waits for every in-flight ack and returns, in send order,
// the batches that still need resending (unacked or backpressured).
func (bi *BinaryIngester) takeUnsettled() [][]Sample {
	var resend [][]Sample
	for _, e := range bi.inflight {
		ack, err := e.p.Wait(bi.ctx)
		if err != nil || !bi.settleAck(ack, e.batch) {
			resend = append(resend, e.batch)
		}
	}
	bi.inflight = bi.inflight[:0]
	return resend
}

// settleAck consumes one ack, reporting whether the batch is finished.
// Backpressure statuses return false: the batch must be resent, and — the
// breaker contract — they count as success, never as a failure.
func (bi *BinaryIngester) settleAck(ack wire.Ack, batch []Sample) bool {
	bi.c.breakerSuccess() // any ack is a definitive server response
	switch ack.Status {
	case wire.StatusOK:
		if bi.cfg.OnAck != nil {
			bi.cfg.OnAck(&IngestResponse{Accepted: ack.Accepted, Deduped: ack.Deduped}, batch)
		}
		return true
	case wire.StatusInvalid:
		if bi.cfg.OnError != nil {
			bi.cfg.OnError(fmt.Errorf("predictclient: binary ingest rejected: %s", ack.Msg), batch)
		}
		return true
	default: // Backlog, Draining, Retry: resend
		return false
	}
}

// recoverAll resends batches in order: one synchronous binary round (over
// the surviving connection, or one redial), then the HTTP fallback — whose
// retry loop owns backoff, Retry-After, and the breaker — for the rest.
func (bi *BinaryIngester) recoverAll(batches [][]Sample) error {
	if len(batches) == 0 {
		return nil
	}
	if bi.conn != nil {
		select {
		case <-bi.conn.Dead():
			bi.conn.Close()
			bi.conn = nil
		default:
		}
	}
	if bi.conn == nil {
		if err := bi.dialBinary(); err != nil {
			bi.fallback(err)
		}
	}
	for bi.conn != nil && len(batches) > 0 {
		ack, err := bi.conn.Ingest(bi.ctx, bi.source(), bi.wireBatch(batches[0]))
		if err != nil {
			// Second connection loss in one recovery: stop probing and let
			// HTTP carry the rest. Still no breaker trip — see type doc.
			bi.conn.Close()
			bi.conn = nil
			bi.fallback(err)
			break
		}
		if !bi.settleAck(ack, batches[0]) {
			// Persistent backpressure: the HTTP retry loop has the backoff
			// discipline (jitter, Retry-After floors) to wait it out.
			bi.fallback(fmt.Errorf("predictclient: binary ingest backpressure: %s", ack.Status))
			break
		}
		batches = batches[1:]
	}
	var firstErr error
	for _, b := range batches {
		if err := bi.shipHTTP(b); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// shipHTTP sends one batch through the client's HTTP retry loop with the
// keys it already carries.
func (bi *BinaryIngester) shipHTTP(batch []Sample) error {
	resp, err := bi.c.IngestFrom(bi.ctx, bi.source(), batch)
	if err != nil {
		if bi.cfg.OnError != nil {
			bi.cfg.OnError(err, batch)
		}
		return err
	}
	if bi.cfg.OnAck != nil {
		bi.cfg.OnAck(resp, batch)
	}
	return nil
}

// wireBatch converts a batch into the wire sample form in a reused buffer —
// safe because the wire encoder copies the samples out before Send returns.
func (bi *BinaryIngester) wireBatch(batch []Sample) []wire.Sample {
	if cap(bi.wbuf) < len(batch) {
		bi.wbuf = make([]wire.Sample, len(batch))
	}
	ws := bi.wbuf[:len(batch)]
	for i, s := range batch {
		ws[i] = wire.Sample{Stream: s.Stream, TS: s.TS, Value: s.Value, Seq: s.Seq}
	}
	return ws
}

// dialBinary opens and handshakes a fresh wire connection.
func (bi *BinaryIngester) dialBinary() error {
	ctx, cancel := context.WithTimeout(bi.ctx, bi.cfg.DialTimeout)
	defer cancel()
	conn, err := wire.Dial(ctx, bi.cfg.Addr, wire.ConnConfig{
		DialTimeout: bi.cfg.DialTimeout,
		Window:      bi.cfg.Window,
	})
	if err != nil {
		return err
	}
	bi.conn = conn
	return nil
}

// fallback records a binary→HTTP transition and schedules the next probe.
func (bi *BinaryIngester) fallback(cause error) {
	bi.probeAt = time.Now().Add(bi.cfg.ReprobeInterval)
	if bi.cfg.OnFallback != nil {
		bi.cfg.OnFallback(cause)
	}
}
