package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/obs"
)

func newTestClient(t *testing.T, url string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:        url,
		Source:         "test-src",
		RequestTimeout: 2 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Seed:           1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without BaseURL succeeded")
	}
}

// TestRetryUntilSuccess: two 503s (with Retry-After and a reason), then a
// 202 — the client retries through, the caller sees only success, and the
// retry metric carries the server's reason label.
func TestRetryUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set(reasonHeader, "shed")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source != "test-src" {
			t.Errorf("bad request: %+v (%v)", req, err)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: len(req.Samples)})
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.Metrics = reg })
	resp, err := c.Ingest(context.Background(), []Sample{{Stream: "s", TS: 1, Value: 1, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || calls.Load() != 3 {
		t.Errorf("accepted %d after %d calls, want 1 after 3", resp.Accepted, calls.Load())
	}
	var prom strings.Builder
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `predictclient_retries_total{reason="shed"} 2`) {
		t.Errorf("metrics missing shed retries:\n%s", prom.String())
	}
}

// TestTerminal400NoRetry: a 4xx is the caller's bug; exactly one request
// goes out and the status surfaces.
func TestTerminal400NoRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"empty stream id"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.Ingest(context.Background(), []Sample{{Value: 1}})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was retried: %d calls", calls.Load())
	}
}

// TestMaxAttemptsExhausted: a permanently failing server consumes exactly
// MaxAttempts requests, and the final error wraps the last failure.
func TestMaxAttemptsExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503", err)
	}
	if calls.Load() != 3 {
		t.Errorf("%d calls, want 3", calls.Load())
	}
}

// TestPerAttemptDeadline: a hung server trips the per-attempt timeout, not
// a client hang; the caller's context is still honored for the loop.
func TestPerAttemptDeadline(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release) // before ts.Close, which waits on the handlers

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.RequestTimeout = 30 * time.Millisecond
		cfg.MaxAttempts = 2
	})
	start := time.Now()
	_, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}})
	if err == nil {
		t.Fatal("hung server ingest succeeded")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Errorf("deadline did not bound the attempt: %v", e)
	}
}

// TestCallerContextStopsRetries: when the caller's own ctx dies mid-loop,
// the error is the ctx error, not a retry classification.
func TestCallerContextStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = -1 // unlimited
		cfg.BaseBackoff = 10 * time.Millisecond
		cfg.MaxBackoff = 10 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Ingest(ctx, []Sample{{Stream: "s", Value: 1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want caller deadline", err)
	}
}

// TestBackoffJitterAndFloor pins the schedule's two invariants: the sleep
// never exceeds min(MaxBackoff, BaseBackoff<<attempt), and Retry-After
// floors it.
func TestBackoffJitterAndFloor(t *testing.T) {
	c := newTestClient(t, "http://unused", func(cfg *Config) {
		cfg.BaseBackoff = 10 * time.Millisecond
		cfg.MaxBackoff = 80 * time.Millisecond
	})
	for attempt := 0; attempt < 10; attempt++ {
		ceil := 10 * time.Millisecond << uint(attempt)
		if ceil > 80*time.Millisecond || ceil <= 0 {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := c.backoff(attempt, 0); d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	if d := c.backoff(0, 3*time.Second); d < 3*time.Second {
		t.Errorf("Retry-After floor ignored: %v", d)
	}
}

// TestParseRetryAfter covers both forms RFC 9110 §10.2.3 allows —
// delay-seconds and HTTP-date — plus garbage, which must parse as no floor.
func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {" 120 ", 120 * time.Second},
		{"0", 0}, {"-1", 0},
		// HTTP-dates in the past (all three RFC 9110 formats) floor at zero.
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
		{"Wednesday, 21-Oct-15 07:28:00 GMT", 0},
		{"Wed Oct 21 07:28:00 2015", 0},
		// Garbage: not seconds, not a date.
		{"soon", 0}, {"12.5", 0}, {"2s", 0}, {"Wed, 21 Oct", 0}, {"\x00", 0},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}

	// A future HTTP-date yields roughly the time remaining until it.
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	got := parseRetryAfter(future)
	if got < 85*time.Second || got > 91*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want ~90s", future, got)
	}
}

// TestEndpointRotation: with two endpoints, the client sticks to the first
// until it fails, rotates to the second on a 503, and completes the request
// there within the same retry loop.
func TestEndpointRotation(t *testing.T) {
	var aCalls, bCalls atomic.Int32
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aCalls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bCalls.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: 1})
	}))
	defer b.Close()

	c := newTestClient(t, a.URL, func(cfg *Config) {
		cfg.Endpoints = []string{b.URL}
	})
	resp, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", resp.Accepted)
	}
	if aCalls.Load() != 1 || bCalls.Load() != 1 {
		t.Fatalf("calls a=%d b=%d, want one failed attempt then one rotated success",
			aCalls.Load(), bCalls.Load())
	}
	// The preference stuck: the next request goes straight to b.
	if _, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 2, Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 1 {
		t.Fatalf("client went back to the failed endpoint (a=%d calls)", aCalls.Load())
	}
}

// TestRouteHintAdoption: a 2xx response carrying X-Predictd-Route re-pins
// the client to the endpoint serving that address.
func TestRouteHintAdoption(t *testing.T) {
	var aCalls, bCalls atomic.Int32
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bCalls.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: 1})
	}))
	defer b.Close()
	bAddr := strings.TrimPrefix(b.URL, "http://")
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aCalls.Add(1)
		// "Accepted here, but that node owns your streams."
		w.Header().Set(routeHeader, bAddr)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: 1})
	}))
	defer a.Close()

	c := newTestClient(t, a.URL, func(cfg *Config) {
		cfg.Endpoints = []string{b.URL}
	})
	if _, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 1 || bCalls.Load() != 0 {
		t.Fatalf("first request: calls a=%d b=%d, want it served at a", aCalls.Load(), bCalls.Load())
	}
	if _, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 2, Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if bCalls.Load() != 1 {
		t.Fatalf("second request ignored the route hint (a=%d b=%d)", aCalls.Load(), bCalls.Load())
	}
}

// TestHeadersApplied: configured headers ride on every request — the
// mechanism the cluster layer uses to mark forwarded/replicated batches.
func TestHeadersApplied(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Predictd-Cluster"))
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: 1})
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.Headers = map[string]string{"X-Predictd-Cluster": "forward"}
	})
	if _, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "forward" {
		t.Fatalf("header = %v, want forward", got.Load())
	}
}

// TestForecast exercises the GET path and document decode.
func TestForecast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/forecast/cpu" {
			t.Errorf("path = %s", r.URL.Path)
		}
		json.NewEncoder(w).Encode(ForecastResponse{Stream: "cpu", Health: "ok", Applied: 7})
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	fr, err := c.Forecast(context.Background(), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stream != "cpu" || fr.Applied != 7 {
		t.Errorf("forecast = %+v", fr)
	}
}
