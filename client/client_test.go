package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/obs"
)

func newTestClient(t *testing.T, url string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:        url,
		Source:         "test-src",
		RequestTimeout: 2 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Seed:           1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without BaseURL succeeded")
	}
}

// TestRetryUntilSuccess: two 503s (with Retry-After and a reason), then a
// 202 — the client retries through, the caller sees only success, and the
// retry metric carries the server's reason label.
func TestRetryUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set(reasonHeader, "shed")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source != "test-src" {
			t.Errorf("bad request: %+v (%v)", req, err)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(IngestResponse{Accepted: len(req.Samples)})
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.Metrics = reg })
	resp, err := c.Ingest(context.Background(), []Sample{{Stream: "s", TS: 1, Value: 1, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || calls.Load() != 3 {
		t.Errorf("accepted %d after %d calls, want 1 after 3", resp.Accepted, calls.Load())
	}
	var prom strings.Builder
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `predictclient_retries_total{reason="shed"} 2`) {
		t.Errorf("metrics missing shed retries:\n%s", prom.String())
	}
}

// TestTerminal400NoRetry: a 4xx is the caller's bug; exactly one request
// goes out and the status surfaces.
func TestTerminal400NoRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"empty stream id"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	_, err := c.Ingest(context.Background(), []Sample{{Value: 1}})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was retried: %d calls", calls.Load())
	}
}

// TestMaxAttemptsExhausted: a permanently failing server consumes exactly
// MaxAttempts requests, and the final error wraps the last failure.
func TestMaxAttemptsExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503", err)
	}
	if calls.Load() != 3 {
		t.Errorf("%d calls, want 3", calls.Load())
	}
}

// TestPerAttemptDeadline: a hung server trips the per-attempt timeout, not
// a client hang; the caller's context is still honored for the loop.
func TestPerAttemptDeadline(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release) // before ts.Close, which waits on the handlers

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.RequestTimeout = 30 * time.Millisecond
		cfg.MaxAttempts = 2
	})
	start := time.Now()
	_, err := c.Ingest(context.Background(), []Sample{{Stream: "s", Value: 1}})
	if err == nil {
		t.Fatal("hung server ingest succeeded")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Errorf("deadline did not bound the attempt: %v", e)
	}
}

// TestCallerContextStopsRetries: when the caller's own ctx dies mid-loop,
// the error is the ctx error, not a retry classification.
func TestCallerContextStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = -1 // unlimited
		cfg.BaseBackoff = 10 * time.Millisecond
		cfg.MaxBackoff = 10 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Ingest(ctx, []Sample{{Stream: "s", Value: 1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want caller deadline", err)
	}
}

// TestBackoffJitterAndFloor pins the schedule's two invariants: the sleep
// never exceeds min(MaxBackoff, BaseBackoff<<attempt), and Retry-After
// floors it.
func TestBackoffJitterAndFloor(t *testing.T) {
	c := newTestClient(t, "http://unused", func(cfg *Config) {
		cfg.BaseBackoff = 10 * time.Millisecond
		cfg.MaxBackoff = 80 * time.Millisecond
	})
	for attempt := 0; attempt < 10; attempt++ {
		ceil := 10 * time.Millisecond << uint(attempt)
		if ceil > 80*time.Millisecond || ceil <= 0 {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := c.backoff(attempt, 0); d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	if d := c.backoff(0, 3*time.Second); d < 3*time.Second {
		t.Errorf("Retry-After floor ignored: %v", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {"0", 0}, {"-1", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, {"soon", 0},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestForecast exercises the GET path and document decode.
func TestForecast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/forecast/cpu" {
			t.Errorf("path = %s", r.URL.Path)
		}
		json.NewEncoder(w).Encode(ForecastResponse{Stream: "cpu", Health: "ok", Applied: 7})
	}))
	defer ts.Close()

	c := newTestClient(t, ts.URL, nil)
	fr, err := c.Forecast(context.Background(), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stream != "cpu" || fr.Applied != 7 {
		t.Errorf("forecast = %+v", fr)
	}
}
