package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

// The read-side API: bulk forecast fetches with client-side ETag caching
// (a poll loop that mostly sees 304s costs the server one hash per poll),
// and an SSE subscription with automatic reconnect + Last-Event-ID resume
// so callers that want push never miss a forecast across a server restart.

// BulkForecastsResponse is the GET /v1/forecasts document.
type BulkForecastsResponse struct {
	Streams    []ForecastResponse `json:"streams"`
	Missing    []string           `json:"missing,omitempty"`
	NextCursor string             `json:"next_cursor,omitempty"`
}

// ForecastEvent is one SSE "forecast" event from /v1/subscribe: the step's
// observation, the forecast issued at it, and how the forecast targeting
// this observation fared.
type ForecastEvent struct {
	Stream    string       `json:"stream"`
	Seq       uint64       `json:"seq"`
	TS        int64        `json:"ts"`
	Value     float64      `json:"value"`
	Forecast  *ForecastDoc `json:"forecast,omitempty"`
	Predicted *float64     `json:"predicted,omitempty"`
	AbsErr    *float64     `json:"abs_err,omitempty"`
	Expert    string       `json:"expert,omitempty"`
}

// etagEntry is one cached bulk response.
type etagEntry struct {
	etag string
	resp *BulkForecastsResponse
}

// Forecasts fetches the named streams' forecast documents in one request,
// with conditional-get caching: the client remembers the ETag per requested
// stream set, sends If-None-Match, and serves a 304 from its cache. The
// returned document is shared with the cache — treat it as read-only.
func (c *Client) Forecasts(ctx context.Context, streams ...string) (*BulkForecastsResponse, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("predictclient: Forecasts needs at least one stream")
	}
	key := strings.Join(streams, ",")
	path := "/v1/forecasts?streams=" + url.QueryEscape(key)

	c.etagMu.Lock()
	cached, haveCached := c.etags[key]
	c.etagMu.Unlock()
	hdr := map[string]string{}
	if haveCached {
		hdr["If-None-Match"] = cached.etag
	}

	var resp BulkForecastsResponse
	meta, err := c.doHdr(ctx, http.MethodGet, path, nil, hdr, &resp)
	if err != nil {
		return nil, err
	}
	if meta.status == http.StatusNotModified {
		return cached.resp, nil
	}
	if etag := meta.header.Get("ETag"); etag != "" {
		c.etagMu.Lock()
		if c.etags == nil {
			c.etags = map[string]etagEntry{}
		}
		c.etags[key] = etagEntry{etag: etag, resp: &resp}
		c.etagMu.Unlock()
	}
	return &resp, nil
}

// History fetches a stream's consolidated forecast-vs-actual history.
// Step <= 1 requests raw entries; larger steps select the server's finest
// tier covering the step. from/to bound by the samples' TS tags; pass
// hasFrom/hasTo=false to leave a side open.
func (c *Client) History(ctx context.Context, stream string, opt HistoryQuery) (*HistoryResponse, error) {
	q := url.Values{}
	if opt.HasFrom {
		q.Set("from", fmt.Sprint(opt.From))
	}
	if opt.HasTo {
		q.Set("to", fmt.Sprint(opt.To))
	}
	if opt.Step > 1 {
		q.Set("step", fmt.Sprint(opt.Step))
	}
	if opt.Limit > 0 {
		q.Set("limit", fmt.Sprint(opt.Limit))
	}
	path := "/v1/forecast/" + stream + "/history"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp HistoryResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// HistoryQuery selects a history range read.
type HistoryQuery struct {
	From, To       int64
	HasFrom, HasTo bool
	Step           int
	Limit          int
}

// HistoryEntry is one raw step of a stream's history.
type HistoryEntry struct {
	Seq            uint64  `json:"seq"`
	TS             int64   `json:"ts"`
	Actual         float64 `json:"actual"`
	Predicted      float64 `json:"predicted,omitempty"`
	PredictedStd   float64 `json:"predicted_std,omitempty"`
	Expert         string  `json:"expert,omitempty"`
	HasPredicted   bool    `json:"has_predicted,omitempty"`
	Forecast       float64 `json:"forecast,omitempty"`
	ForecastStd    float64 `json:"forecast_std,omitempty"`
	ForecastExpert string  `json:"forecast_expert,omitempty"`
	HasForecast    bool    `json:"has_forecast,omitempty"`
}

// HistoryRow is one consolidated row of a stream's history.
type HistoryRow struct {
	StartTS   int64   `json:"start_ts"`
	EndTS     int64   `json:"end_ts"`
	StartSeq  uint64  `json:"start_seq"`
	EndSeq    uint64  `json:"end_seq"`
	Count     int     `json:"count"`
	Predicted int     `json:"predicted,omitempty"`
	ActualAvg float64 `json:"actual_avg"`
	ActualMin float64 `json:"actual_min"`
	ActualMax float64 `json:"actual_max"`
	PredAvg   float64 `json:"pred_avg,omitempty"`
	AbsErrAvg float64 `json:"abs_err_avg,omitempty"`
	Expert    string  `json:"expert,omitempty"`
}

// HistoryResponse is the GET /v1/forecast/{stream}/history document.
type HistoryResponse struct {
	Stream     string         `json:"stream"`
	Seq        uint64         `json:"seq"`
	Resolution int            `json:"resolution"`
	Entries    []HistoryEntry `json:"entries,omitempty"`
	Rows       []HistoryRow   `json:"rows,omitempty"`
}

// SubscribeForecasts opens the SSE feed for the given streams and calls fn
// for every forecast event, exactly once per event, until ctx cancels or fn
// returns an error (which is returned). Dropped connections reconnect
// automatically with the client's backoff schedule, resuming from the last
// delivered position via Last-Event-ID — across a server restart, no event
// already delivered is repeated and none within the server's history ring
// is lost.
//
// Resume positions are per-node state: against a multi-node cluster behind
// distinct endpoints, reconnects stick to the endpoint that served the
// subscription rather than rotating.
func (c *Client) SubscribeForecasts(ctx context.Context, streams []string, fn func(ForecastEvent) error) error {
	if len(streams) == 0 {
		return fmt.Errorf("predictclient: SubscribeForecasts needs at least one stream")
	}
	base, _ := c.endpoint()
	target := base + "/v1/subscribe?streams=" + url.QueryEscape(strings.Join(streams, ","))
	// lastSeq is the client-side exactly-once guard: the server already
	// dedups across its own backfill/live seam, but a reconnect replays
	// from the resume position, and this filters anything delivered before
	// the connection dropped.
	lastSeq := make(map[string]uint64, len(streams))
	lastID := ""
	for attempt := 0; ; {
		err := c.streamOnce(ctx, target, lastID, func(id string, ev ForecastEvent) error {
			if ev.Seq <= lastSeq[ev.Stream] {
				return nil
			}
			lastSeq[ev.Stream] = ev.Seq
			lastID = id
			attempt = 0 // a delivered event proves the connection works
			return fn(ev)
		})
		if err != nil {
			var cbErr *callbackError
			if errors.As(err, &cbErr) {
				return cbErr.err
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if c.cfg.MaxAttempts > 0 && attempt+1 >= c.cfg.MaxAttempts {
			return fmt.Errorf("predictclient: %d subscribe attempts exhausted: %w", c.cfg.MaxAttempts, err)
		}
		c.retries.WithLabels(reasonNetwork).Inc()
		if werr := c.sleep(ctx, c.backoff(attempt, 0)); werr != nil {
			return werr
		}
		attempt++
	}
}

// callbackError wraps an error returned by the subscriber's callback so the
// reconnect loop can tell "stop, the caller said so" from "the connection
// died, reconnect".
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

func (e *callbackError) Unwrap() error { return e.err }

// streamOnce runs one SSE connection until it drops, ctx cancels, or the
// callback errors. deliver receives the event's full id vector alongside
// the decoded event.
func (c *Client) streamOnce(ctx context.Context, target, lastID string,
	deliver func(id string, ev ForecastEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	for k, v := range c.cfg.Headers {
		req.Header.Set(k, v)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("predictclient: subscribe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw := make([]byte, 4096)
		n, _ := resp.Body.Read(raw)
		return statusError(resp, raw[:n])
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var id, event string
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Event boundary: dispatch what accumulated.
			if event == "forecast" && data.Len() > 0 {
				var ev ForecastEvent
				if derr := json.Unmarshal([]byte(data.String()), &ev); derr != nil {
					return fmt.Errorf("predictclient: decode feed event: %w", derr)
				}
				if cerr := deliver(id, ev); cerr != nil {
					return &callbackError{err: cerr}
				}
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment.
		case strings.HasPrefix(line, "id: "):
			id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(line[len("data: "):])
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("predictclient: subscribe stream: %w", err)
	}
	return fmt.Errorf("predictclient: subscribe stream closed")
}
