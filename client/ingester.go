package client

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrIngesterClosed is returned by Add and Flush after Close.
var ErrIngesterClosed = errors.New("predictclient: ingester closed")

// IngesterConfig shapes an Ingester; every zero field has a default.
type IngesterConfig struct {
	// MaxBatch is the largest batch one ingest request carries (default 64).
	MaxBatch int
	// FlushInterval bounds how long a sample waits for batch-mates
	// (default 100ms).
	FlushInterval time.Duration
	// QueueDepth is the Add buffer; Add blocks (honoring its ctx) when the
	// worker falls behind (default 1024).
	QueueDepth int
	// OnAck, when set, observes every acknowledged batch.
	OnAck func(resp *IngestResponse, batch []Sample)
	// OnError, when set, observes a batch the retry loop gave up on —
	// the samples (keys included) are handed back so the caller can
	// re-submit them without minting new keys.
	OnError func(err error, batch []Sample)
}

// Ingester batches samples and ships them asynchronously through the
// client's retry loop. Each Add assigns the sample the next seq from one
// monotonic counter, so every sample of this client carries a distinct
// (source, seq) idempotency key that stays fixed however many times its
// batch is retried — the server applies it exactly once.
type Ingester struct {
	c   *Client
	cfg IngesterConfig

	mu     sync.Mutex
	seq    uint64
	closed bool

	in      chan Sample
	flushes chan chan error
	quit    chan struct{}
	done    chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc
}

// NewIngester starts the background flusher. Callers must Close it to
// flush the tail.
func (c *Client) NewIngester(cfg IngesterConfig) *Ingester {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 100 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	ing := &Ingester{
		c:       c,
		cfg:     cfg,
		in:      make(chan Sample, cfg.QueueDepth),
		flushes: make(chan chan error),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	go ing.run()
	return ing
}

// Add enqueues one observation, assigning its idempotency seq. It blocks
// when the queue is full until the worker catches up or ctx cancels.
func (ing *Ingester) Add(ctx context.Context, s Sample) error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return ErrIngesterClosed
	}
	ing.seq++
	s.Seq = ing.seq
	ing.mu.Unlock()
	select {
	case ing.in <- s:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-ing.done:
		return ErrIngesterClosed
	}
}

// Flush sends everything queued so far and returns the outcome of that
// synchronous flush.
func (ing *Ingester) Flush(ctx context.Context) error {
	res := make(chan error, 1)
	select {
	case ing.flushes <- res:
	case <-ctx.Done():
		return ctx.Err()
	case <-ing.done:
		return ErrIngesterClosed
	}
	select {
	case err := <-res:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes the remaining queue and stops the worker. After Close, Add
// and Flush fail with ErrIngesterClosed.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		<-ing.done
		return nil
	}
	ing.closed = true
	ing.mu.Unlock()
	close(ing.quit)
	<-ing.done
	ing.cancel()
	return nil
}

func (ing *Ingester) run() {
	defer close(ing.done)
	ticker := time.NewTicker(ing.cfg.FlushInterval)
	defer ticker.Stop()
	var batch []Sample
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		resp, err := ing.c.Ingest(ing.ctx, batch)
		if err != nil {
			if ing.cfg.OnError != nil {
				ing.cfg.OnError(err, batch)
			}
			batch = nil
			return err
		}
		if ing.cfg.OnAck != nil {
			ing.cfg.OnAck(resp, batch)
		}
		batch = nil
		return nil
	}
	for {
		select {
		case <-ing.quit:
			// Closing: drain whatever Adds completed, flush the tail, exit.
			for drain := true; drain; {
				select {
				case s := <-ing.in:
					batch = append(batch, s)
					if len(batch) >= ing.cfg.MaxBatch {
						flush()
					}
				default:
					drain = false
				}
			}
			flush()
			return
		case s := <-ing.in:
			batch = append(batch, s)
			if len(batch) >= ing.cfg.MaxBatch {
				flush()
			}
		case <-ticker.C:
			flush()
		case res := <-ing.flushes:
			// Pull everything already queued into this flush (in MaxBatch
			// chunks) so the caller gets a true barrier over its prior Adds.
			var ferr error
			for {
				fill := true
				for fill && len(batch) < ing.cfg.MaxBatch {
					select {
					case s := <-ing.in:
						batch = append(batch, s)
					default:
						fill = false
					}
				}
				if len(batch) == 0 {
					break
				}
				if err := flush(); err != nil && ferr == nil {
					ferr = err
				}
			}
			res <- ferr
		}
	}
}
