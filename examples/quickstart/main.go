// Quickstart: train a LARPredictor on a synthetic CPU trace and forecast the
// next sample, printing which expert the classifier chose.
package main

import (
	"fmt"
	"log"

	larpredictor "github.com/acis-lab/larpredictor"
)

func main() {
	// A day of five-minute CPU samples from the synthetic VM workload
	// generator (any []float64 works here — this is just a realistic one).
	traces := larpredictor.StandardTraceSet(1)
	series, err := traces.Get("VM2", "CPU_usedsec")
	if err != nil {
		log.Fatal(err)
	}
	history := series.Values

	// The paper's configuration for five-minute traces: window m = 5,
	// PCA to 2 components, 3-NN, pool {LAST, AR, SW_AVG}.
	predictor, err := larpredictor.New(larpredictor.DefaultConfig(5))
	if err != nil {
		log.Fatal(err)
	}

	// Train on the first half...
	if err := predictor.Train(history[:len(history)/2]); err != nil {
		log.Fatal(err)
	}

	// ...and forecast one step ahead from the trailing window.
	pred, err := predictor.Forecast(history[len(history)-5:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next value ≈ %.2f (forecast by the %s expert)\n", pred.Value, pred.SelectedName)

	// Evaluate on the second half: the result compares the adaptive
	// predictor with the perfect-selection oracle and every single expert.
	res, err := predictor.Evaluate(history[len(history)/2:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normalized MSE over %d test frames: LAR %.4f (oracle bound %.4f)\n",
		res.N, res.LARMSE, res.OracleMSE)
	for i, name := range predictor.Pool().Names() {
		fmt.Printf("  %-8s alone: %.4f\n", name, res.ExpertMSE[i])
	}
	fmt.Printf("best-expert forecasting accuracy: %.1f%%\n", 100*res.ForecastAccuracy)
}
