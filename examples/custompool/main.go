// custompool shows how to extend the LARPredictor with a user-defined
// expert. The paper's §8 proposes exactly this: "We plan to incorporate more
// prediction models ... into the predictor pool to leverage their prediction
// power for different type of workload." Here we add a damped-trend expert
// alongside the built-in extended pool and let the classifier decide when it
// helps.
package main

import (
	"fmt"
	"log"

	larpredictor "github.com/acis-lab/larpredictor"
)

// DampedTrend predicts by extrapolating the average step of the trailing
// window, damped toward zero — a compromise between LAST and full linear
// extrapolation that behaves well on noisy ramps.
type DampedTrend struct {
	Damping float64 // 0..1, fraction of the mean step applied
}

// Name implements larpredictor.Predictor.
func (DampedTrend) Name() string { return "DAMPED_TREND" }

// Order implements larpredictor.Predictor.
func (DampedTrend) Order() int { return 3 }

// Fit implements larpredictor.Predictor; the damping is fixed.
func (DampedTrend) Fit([]float64) error { return nil }

// Predict implements larpredictor.Predictor.
func (d DampedTrend) Predict(w []float64) (float64, error) {
	if len(w) < 3 {
		return 0, larpredictor.ErrWindowTooShort
	}
	tail := w[len(w)-3:]
	meanStep := (tail[2] - tail[0]) / 2
	return tail[2] + d.Damping*meanStep, nil
}

func main() {
	// Register the expert so it can also be constructed by name.
	larpredictor.RegisterPredictor("DAMPED_TREND", func() larpredictor.Predictor {
		return DampedTrend{Damping: 0.6}
	})

	const window = 5
	pools := map[string]*larpredictor.Pool{
		"paper pool (3 experts)": larpredictor.PaperPool(window),
		"paper pool + DampedTrend": larpredictor.NewPool(append(
			larpredictor.PaperPool(window).Predictors(),
			DampedTrend{Damping: 0.6},
		)...),
	}

	traces := larpredictor.StandardTraceSet(17)
	series, err := traces.Get("VM4", "NIC1_received")
	if err != nil {
		log.Fatal(err)
	}
	vals := series.Values
	half := len(vals) / 2

	fmt.Printf("trace %s, %d samples\n\n", series.Name, len(vals))
	for name, pool := range pools {
		cfg := larpredictor.DefaultConfig(window)
		cfg.Pool = pool
		p, err := larpredictor.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Train(vals[:half]); err != nil {
			log.Fatal(err)
		}
		res, err := p.Evaluate(vals[half:])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  LAR MSE %.4f (oracle %.4f, accuracy %.1f%%)\n",
			name, res.LARMSE, res.OracleMSE, 100*res.ForecastAccuracy)
		// How often was each expert selected?
		counts := make([]int, pool.Size())
		for _, sel := range res.Selected {
			counts[sel]++
		}
		for i, n := range pool.Names() {
			fmt.Printf("  %-14s selected %3d times (MSE alone %.4f)\n", n, counts[i], res.ExpertMSE[i])
		}
		fmt.Println()
	}
}
