// gridscheduler demonstrates the grid-computing scenario that motivates the
// paper (§1): an adaptive resource scheduler placing jobs on the VM whose
// *predicted* CPU availability is highest, in the spirit of the conservative
// scheduling work the paper builds on (Yang, Schopf & Foster, SC'03). It
// compares three placement policies over the synthetic five-VM cluster:
//
//	random     — uniform placement (no information)
//	reactive   — place on the host with the lowest last-observed load
//	predictive — place on the host with the lowest LARPredictor forecast
//
// Scored by the actual load each job ran into.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	larpredictor "github.com/acis-lab/larpredictor"
)

func main() {
	traces := larpredictor.StandardTraceSet(23)
	vms := larpredictor.VMs()

	// Load series per VM (CPU demand from other tenants; lower = better
	// host for our job). Each host's series is normalized by its own mean
	// so hosts of different capacity are comparable — the scheduler cares
	// about relative headroom, not absolute CPU-seconds.
	load := make(map[larpredictor.VMID][]float64, len(vms))
	n := 0
	for _, vm := range vms {
		s, err := traces.Get(vm, "CPU_usedsec")
		if err != nil {
			log.Fatal(err)
		}
		var mean float64
		for _, v := range s.Values {
			mean += v
		}
		mean /= float64(s.Len())
		rel := make([]float64, s.Len())
		for i, v := range s.Values {
			rel[i] = v / mean
		}
		load[vm] = rel
		if n == 0 || s.Len() < n {
			n = s.Len()
		}
	}

	// One streaming predictor per VM.
	online := make(map[larpredictor.VMID]*larpredictor.Online, len(vms))
	for _, vm := range vms {
		o, err := larpredictor.NewOnline(larpredictor.OnlineConfig{
			Predictor:    larpredictor.DefaultConfig(5),
			TrainSize:    72,
			AuditWindow:  12,
			MSEThreshold: 2.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		online[vm] = o
	}

	rng := rand.New(rand.NewSource(1))
	var randomCost, reactiveCost, predictiveCost float64
	jobs := 0

	for t := 1; t < n; t++ {
		// Everyone folds the previous interval in and forecasts the next
		// in one Step.
		forecasts := make(map[larpredictor.VMID]float64, len(vms))
		ready := true
		for _, vm := range vms {
			pred, _, err := online[vm].Step(load[vm][t-1])
			if err != nil {
				if errors.Is(err, larpredictor.ErrNotReady) {
					ready = false // warm-up: no scheduling decisions yet
					continue
				}
				log.Fatal(err)
			}
			forecasts[vm] = pred.Value
		}
		if !ready {
			continue
		}

		// A job arrives this interval; each policy picks a host, and the
		// job pays the host's *actual* load during the interval.
		jobs++

		randomCost += load[vms[rng.Intn(len(vms))]][t]

		bestReactive, bestSeen := vms[0], load[vms[0]][t-1]
		for _, vm := range vms[1:] {
			if load[vm][t-1] < bestSeen {
				bestReactive, bestSeen = vm, load[vm][t-1]
			}
		}
		reactiveCost += load[bestReactive][t]

		bestPred, bestForecast := larpredictor.VMID(""), 0.0
		for _, vm := range vms {
			if v := forecasts[vm]; bestPred == "" || v < bestForecast {
				bestPred, bestForecast = vm, v
			}
		}
		predictiveCost += load[bestPred][t]
	}

	fmt.Printf("scheduled %d jobs across %d VMs (mean load hit per job; lower is better)\n\n", jobs, len(vms))
	fmt.Printf("  random placement     %8.3f\n", randomCost/float64(jobs))
	fmt.Printf("  reactive (last obs)  %8.3f\n", reactiveCost/float64(jobs))
	fmt.Printf("  predictive (LAR)     %8.3f\n", predictiveCost/float64(jobs))
}
