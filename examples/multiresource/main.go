// multiresource demonstrates the multi-resource prediction idea from the
// paper's related work (Liang, Nahrstedt & Zhou): when two resources are
// cross-correlated — here, a host whose page-cache pressure follows its CPU
// load with a lag — predicting one from both beats predicting it from its
// own history alone. The example first measures the cross-correlation
// (the go/no-go diagnostic), then compares a single-resource model against
// the two-series model on held-out data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	larpredictor "github.com/acis-lab/larpredictor"
)

func main() {
	// CPU load from the synthetic VM workload; memory pressure follows it
	// one interval later, plus its own noise (a common pattern: buffers
	// fill as load rises).
	traces := larpredictor.StandardTraceSet(31)
	s, err := traces.Get("VM4", "CPU_usedsec")
	if err != nil {
		log.Fatal(err)
	}
	cpu := s.Values
	rng := rand.New(rand.NewSource(99))
	mem := make([]float64, len(cpu))
	for i := 1; i < len(mem); i++ {
		mem[i] = 0.5*mem[i-1] + 0.8*cpu[i-1] + 2*rng.NormFloat64()
	}

	// Is the auxiliary worth using? Check the lead-lag cross-correlation.
	rho1, err := larpredictor.CrossCorrelation(mem, cpu, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-correlation corr(mem_t, cpu_t-1) = %.3f\n\n", rho1)

	// We predict MEMORY, using CPU as the auxiliary input.
	half := len(mem) / 2
	single := larpredictor.NewMultiResource(3, 0) // own history only
	if err := single.Fit(mem[:half], cpu[:half]); err != nil {
		log.Fatal(err)
	}
	cross := larpredictor.NewMultiResource(3, 3) // + 3 CPU lags
	if err := cross.Fit(mem[:half], cpu[:half]); err != nil {
		log.Fatal(err)
	}

	score := func(m *larpredictor.MultiResourceModel) float64 {
		var ss float64
		n := 0
		for i := half; i < len(mem)-1; i++ {
			pred, err := m.Predict(mem[:i+1], cpu[:i+1])
			if err != nil {
				log.Fatal(err)
			}
			d := pred - mem[i+1]
			ss += d * d
			n++
		}
		return ss / float64(n)
	}

	singleMSE := score(single)
	crossMSE := score(cross)
	fmt.Printf("memory-prediction MSE over %d held-out steps:\n", len(mem)-half-1)
	fmt.Printf("  own history only (AR-3)         %10.4f\n", singleMSE)
	fmt.Printf("  + 3 lags of CPU (multi-resource) %9.4f\n", crossMSE)
	fmt.Printf("  improvement: %.1f%%  (cross gain in fitted weights: %.0f%%)\n",
		100*(1-crossMSE/singleMSE), 100*cross.CrossGain())
}
