// vmprovision demonstrates the paper's motivating use case: prediction-driven
// dynamic VM provisioning (the VMPlant scenario of §1 and §3). A resource
// manager watches a streaming LARPredictor per VM and scales each VM's CPU
// share up before predicted demand spikes and down in predicted lulls,
// comparing the resulting overload/waste against a reactive manager that only
// looks at the last observation.
package main

import (
	"fmt"
	"log"

	larpredictor "github.com/acis-lab/larpredictor"
)

// provisionPolicy converts a demand estimate and an uncertainty estimate
// into an allocation: conservative scheduling provisions at the predicted
// demand plus two sigma (the Yang et al. idea the paper builds on), with a
// minimum share floor. The reactive manager has no uncertainty estimate and
// falls back to fixed fractional headroom.
func provisionPolicy(estimate, sigma float64) float64 {
	alloc := estimate + 2*sigma
	if sigma == 0 {
		alloc = estimate * 1.25
	}
	if alloc < 5 {
		alloc = 5 // minimum share
	}
	return alloc
}

// score tallies how a sequence of allocations served the actual demand.
type score struct {
	overloadSteps int     // demand exceeded the allocation
	wasted        float64 // allocated-but-unused capacity, summed
}

func (s *score) observe(alloc, demand float64) {
	if demand > alloc {
		s.overloadSteps++
	} else {
		s.wasted += alloc - demand
	}
}

func main() {
	traces := larpredictor.StandardTraceSet(42)

	fmt.Println("prediction-driven vs reactive CPU provisioning (lower is better)")
	fmt.Printf("%-6s %-22s %-22s\n", "VM", "predictive (over/waste)", "reactive (over/waste)")

	for _, vm := range larpredictor.VMs() {
		series, err := traces.Get(vm, "CPU_usedsec")
		if err != nil {
			log.Fatal(err)
		}
		demand := series.Values

		online, err := larpredictor.NewOnline(larpredictor.OnlineConfig{
			Predictor:    larpredictor.DefaultConfig(5),
			TrainSize:    72, // six hours of five-minute samples
			AuditWindow:  12,
			MSEThreshold: 2.0,
		})
		if err != nil {
			log.Fatal(err)
		}

		var predictive, reactive score
		var pending larpredictor.Prediction
		hasPending := false
		for t, d := range demand {
			// Provision for this step using each manager's estimate of the
			// demand (the predictive manager's is last step's forecast),
			// then fold the real demand in and forecast the next step —
			// one Step call.
			if hasPending {
				predictive.observe(provisionPolicy(pending.Value, pending.StdEstimate), d)
			}
			if t > 0 {
				reactive.observe(provisionPolicy(demand[t-1], 0), d)
			}
			pred, _, err := online.Step(d)
			hasPending = err == nil
			if hasPending {
				pending = pred
			}
		}

		fmt.Printf("%-6s %4d steps / %8.1f     %4d steps / %8.1f\n",
			vm, predictive.overloadSteps, predictive.wasted,
			reactive.overloadSteps, reactive.wasted)
	}
	fmt.Println("\n(the predictive manager only provisions once its LARPredictor has trained;")
	fmt.Println(" 'over' counts intervals where demand exceeded the allocation, 'waste' sums idle share)")
}
