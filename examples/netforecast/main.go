// netforecast pits the LARPredictor against the Network Weather Service
// selection scheme on bursty network-bandwidth traces — the NWS's home
// domain (§2 of the paper). Both consume the identical stream; the NWS runs
// every expert on every step and publishes the lowest-cumulative-MSE
// expert's forecast, while the LARPredictor classifies the window and runs a
// single expert.
package main

import (
	"fmt"
	"log"

	larpredictor "github.com/acis-lab/larpredictor"
)

func main() {
	traces := larpredictor.StandardTraceSet(9)
	metrics := []larpredictor.MetricName{
		"NIC1_received", "NIC1_transmitted", "NIC2_received", "NIC2_transmitted",
	}

	fmt.Println("network bandwidth forecasting: LARPredictor vs NWS cumulative-MSE selection")
	fmt.Printf("%-26s %10s %10s %10s %10s\n", "trace", "LAR", "NWS", "oracle", "winner")

	const window = 5
	for _, vm := range larpredictor.VMs() {
		for _, metric := range metrics {
			series, err := traces.Get(vm, metric)
			if err != nil {
				log.Fatal(err)
			}
			vals := series.Values
			if larpredictor.NewSeries("", vals).IsConstant(0) {
				continue // idle device
			}
			half := len(vals) / 2

			// Train the LARPredictor on the first half.
			lar, err := larpredictor.New(larpredictor.DefaultConfig(window))
			if err != nil {
				log.Fatal(err)
			}
			if err := lar.Train(vals[:half]); err != nil {
				log.Fatal(err)
			}
			res, err := lar.Evaluate(vals[half:])
			if err != nil {
				log.Fatal(err)
			}

			// Run the NWS over the same normalized test frames, warmed on
			// the training half (it tracks errors continuously).
			norm := lar.Normalizer()
			sel, err := larpredictor.NewCumulativeMSE(lar.Pool())
			if err != nil {
				log.Fatal(err)
			}
			nwsMSE, err := runNWS(sel, norm, vals[:half], vals[half:], window)
			if err != nil {
				log.Fatal(err)
			}

			winner := "NWS"
			if res.LARMSE < nwsMSE {
				winner = "LAR"
			}
			fmt.Printf("%-26s %10.4f %10.4f %10.4f %10s\n",
				series.Name, res.LARMSE, nwsMSE, res.OracleMSE, winner)
		}
	}
}

// runNWS warms the selector on the training half and returns its published-
// forecast MSE over the test half, in the same normalized space the
// LARPredictor reports.
func runNWS(sel *larpredictor.NWSSelector, norm larpredictor.Normalizer, train, test []float64, window int) (float64, error) {
	feed := func(vals []float64, score bool) (float64, int) {
		z := norm.Apply(vals)
		var sumSq float64
		n := 0
		for i := 0; i+window < len(z); i++ {
			step, err := sel.Step(z[i:i+window], z[i+window])
			if err != nil {
				log.Fatal(err)
			}
			if score {
				d := step.Prediction - z[i+window]
				sumSq += d * d
				n++
			}
		}
		return sumSq, n
	}
	feed(train, false)
	sumSq, n := feed(test, true)
	if n == 0 {
		return 0, fmt.Errorf("no test frames")
	}
	return sumSq / float64(n), nil
}
