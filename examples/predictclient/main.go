// Predictclient: a minimal HTTP client for a running predictd. It streams a
// synthetic CPU trace into POST /v1/ingest in batches, then reads the
// stream's latest forecast back from GET /v1/forecast/{stream} — the whole
// serving loop a real collector would run, in ~80 lines of stdlib.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/predictd -listen :8100 &
//	go run ./examples/predictclient -addr http://localhost:8100
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	larpredictor "github.com/acis-lab/larpredictor"
)

type sample struct {
	Stream string  `json:"stream"`
	TS     int64   `json:"ts"`
	Value  float64 `json:"value"`
}

type ingestRequest struct {
	Samples []sample `json:"samples"`
}

type forecastResponse struct {
	Stream   string `json:"stream"`
	Health   string `json:"health"`
	LastTS   int64  `json:"last_ts"`
	Forecast *struct {
		Value  float64 `json:"value"`
		Expert string  `json:"expert"`
	} `json:"forecast"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8100", "predictd base URL")
	stream := flag.String("stream", "VM2/CPU_usedsec", "stream ID to ingest and query")
	flag.Parse()

	// A day of five-minute CPU samples from the synthetic VM workload
	// generator; any float64 series a collector produces works the same way.
	traces := larpredictor.StandardTraceSet(1)
	series, err := traces.Get("VM2", "CPU_usedsec")
	if err != nil {
		log.Fatal(err)
	}

	// Ingest in batches of 32. The daemon creates the stream on first sight
	// and trains the predictor once enough samples have arrived; 429 means
	// back off and retry, exactly as the Retry-After header says.
	const batchSize = 32
	for start := 0; start < len(series.Values); start += batchSize {
		end := min(start+batchSize, len(series.Values))
		req := ingestRequest{}
		for i := start; i < end; i++ {
			req.Samples = append(req.Samples, sample{Stream: *stream, TS: int64(i), Value: series.Values[i]})
		}
		body, _ := json.Marshal(req)
		for {
			resp, err := http.Post(*addr+"/v1/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(time.Second)
				continue
			}
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("ingest: unexpected status %s", resp.Status)
			}
			break
		}
	}

	// Ingest is asynchronous: poll until the daemon has folded in the tail.
	lastTS := int64(len(series.Values) - 1)
	var fc forecastResponse
	for {
		resp, err := http.Get(*addr + "/v1/forecast/" + *stream)
		if err != nil {
			log.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &fc); err != nil {
				log.Fatal(err)
			}
			if fc.LastTS == lastTS && fc.Forecast != nil {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("stream %s (health %s): next value ≈ %.2f (forecast by the %s expert)\n",
		fc.Stream, fc.Health, fc.Forecast.Value, fc.Forecast.Expert)
}
