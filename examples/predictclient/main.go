// Predictclient: a resilient client for a running predictd, built on the
// repo's client package. It streams a synthetic CPU trace into POST
// /v1/ingest through the batching Ingester — exponential backoff with full
// jitter, Retry-After honored, circuit breaker, and client-assigned
// (source, seq) idempotency keys so retried batches apply exactly once on
// a WAL-mode daemon — then reads the stream's forecast back. Ctrl-C exits
// cleanly at any point: the first SIGINT stops new work, flushes what was
// queued, and prints where the stream got to.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/predictd -listen :8100 &
//	go run ./examples/predictclient -addr http://localhost:8100
//
// With -watch, the client instead subscribes to the live forecast feed
// (GET /v1/subscribe, server-sent events) while the ingest runs, printing
// each observation against the forecast that targeted it as the daemon
// processes them. The subscription survives connection drops: it reconnects
// with Last-Event-ID and delivers every event exactly once.
//
// With -binary, ingest travels over the framed binary wire protocol instead
// of HTTP/JSON — start the daemon with -binary-listen and point the flag at
// that address:
//
//	go run ./cmd/predictd -listen :8100 -binary-listen :8200 &
//	go run ./examples/predictclient -addr http://localhost:8100 -binary localhost:8200
//
// The BinaryIngester keeps the same idempotency keys and falls back to the
// HTTP transport (resending the very same batches) if the binary listener
// goes away, so durability semantics are identical on both paths.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	larpredictor "github.com/acis-lab/larpredictor"
	"github.com/acis-lab/larpredictor/client"
)

func main() {
	addr := flag.String("addr", "http://localhost:8100", "predictd base URL")
	binary := flag.String("binary", "", "predictd binary ingest address (-binary-listen); empty keeps ingest on HTTP/JSON")
	stream := flag.String("stream", "VM2/CPU_usedsec", "stream ID to ingest and query")
	source := flag.String("source", "predictclient-example", "idempotency source ID for this client")
	watch := flag.Bool("watch", false, "follow the live forecast feed while ingesting")
	flag.Parse()

	// First SIGINT cancels ctx: in-flight work wraps up and the client
	// exits 0. A second SIGINT kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	c, err := client.New(client.Config{
		BaseURL: *addr,
		Source:  *source,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A day of five-minute CPU samples from the synthetic VM workload
	// generator; any float64 series a collector produces works the same way.
	traces := larpredictor.StandardTraceSet(1)
	series, err := traces.Get("VM2", "CPU_usedsec")
	if err != nil {
		log.Fatal(err)
	}

	// -watch: follow the feed in the background while the ingest below runs.
	// SubscribeForecasts reconnects on its own; the goroutine ends when ctx
	// cancels or the ingest finishes and watchStop is called.
	var watchDone chan struct{}
	var watchStop context.CancelFunc
	if *watch {
		var wctx context.Context
		wctx, watchStop = context.WithCancel(ctx)
		watchDone = make(chan struct{})
		defer func() {
			watchStop()
			<-watchDone
		}()
		go func() {
			defer close(watchDone)
			err := c.SubscribeForecasts(wctx, []string{*stream}, func(ev client.ForecastEvent) error {
				if ev.Predicted != nil {
					fmt.Printf("[watch] ts=%d value=%.2f predicted=%.2f (|err| %.2f, %s)\n",
						ev.TS, ev.Value, *ev.Predicted, *ev.AbsErr, ev.Expert)
				} else {
					fmt.Printf("[watch] ts=%d value=%.2f (warming up)\n", ev.TS, ev.Value)
				}
				return nil
			})
			if err != nil && wctx.Err() == nil {
				log.Printf("watch ended: %v", err)
			}
		}()
	}

	// The Ingester batches, retries, and keys every sample; Add blocks only
	// when the daemon falls behind. Backpressure (429/503 + Retry-After)
	// and transient failures are absorbed by the client's retry loop. With
	// -binary, the BinaryIngester does the same job over the framed wire
	// protocol, pipelining frames and falling back to HTTP if it fails.
	type ingester interface {
		Add(ctx context.Context, s client.Sample) error
		Close() error
	}
	var ing ingester
	onError := func(err error, batch []client.Sample) {
		log.Printf("batch of %d gave up: %v", len(batch), err)
	}
	if *binary != "" {
		bing, err := c.NewBinaryIngester(client.BinaryIngesterConfig{
			Addr:          *binary,
			MaxBatch:      32,
			FlushInterval: 100 * time.Millisecond,
			OnError:       onError,
			OnFallback: func(err error) {
				log.Printf("binary transport unavailable, using HTTP: %v", err)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ing = bing
	} else {
		ing = c.NewIngester(client.IngesterConfig{
			MaxBatch:      32,
			FlushInterval: 100 * time.Millisecond,
			OnError:       onError,
		})
	}
	sent := 0
	for i, v := range series.Values {
		if err := ing.Add(ctx, client.Sample{Stream: *stream, TS: int64(i), Value: v}); err != nil {
			if errors.Is(err, context.Canceled) {
				break // Ctrl-C: flush what we have and report
			}
			log.Fatal(err)
		}
		sent++
	}
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
	if sent == 0 {
		fmt.Println("interrupted before any sample was sent")
		return
	}

	// Ingest is asynchronous server-side: poll until the daemon has folded
	// in the tail of what was actually sent, then print the forecast.
	lastTS := int64(sent - 1)
	for {
		fc, err := c.Forecast(ctx, *stream)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Printf("interrupted after sending %d samples\n", sent)
				return
			}
			log.Fatal(err)
		}
		if fc.LastTS >= lastTS && fc.Forecast != nil {
			fmt.Printf("stream %s (health %s): next value ≈ %.2f (forecast by the %s expert)\n",
				fc.Stream, fc.Health, fc.Forecast.Value, fc.Forecast.Expert)
			return
		}
		select {
		case <-ctx.Done():
			fmt.Printf("interrupted after sending %d samples (stream at ts %d)\n", sent, fc.LastTS)
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}
