// Command larpredict trains a LARPredictor on the leading portion of a CSV
// time series and reports its prediction performance on the remainder,
// comparing against the perfect-selection oracle, every single expert, and
// the NWS cumulative-MSE baseline:
//
//	larpredict -window 5 trace.csv
//	tracegen -vm VM2 -metric CPU_usedsec | larpredict -split 0.6 -
//
// The input is a two-column "timestamp,value" CSV, as produced by tracegen.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	larpredictor "github.com/acis-lab/larpredictor"
	"github.com/acis-lab/larpredictor/internal/nws"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

func main() {
	var (
		window   = flag.Int("window", 5, "prediction window size m")
		k        = flag.Int("k", 3, "nearest neighbors voting")
		pcaDim   = flag.Int("pca", 2, "PCA components n (0 disables PCA)")
		split    = flag.Float64("split", 0.5, "fraction of samples used for training")
		extended = flag.Bool("extended", false, "use the 8-expert extended pool")
		forecast = flag.Bool("forecast", false, "print a one-step forecast from the trailing window instead of evaluating")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: larpredict [flags] <trace.csv | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *window, *k, *pcaDim, *split, *extended, *forecast); err != nil {
		fmt.Fprintln(os.Stderr, "larpredict:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, path string, window, k, pcaDim int, split float64, extended, forecast bool) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	series, err := timeseries.ReadCSV(in)
	if err != nil {
		return err
	}
	if err := series.Validate(); err != nil {
		return err
	}

	cfg := larpredictor.DefaultConfig(window)
	cfg.K = k
	if pcaDim == 0 {
		cfg.DisablePCA = true
	} else {
		cfg.PCAComponents = pcaDim
	}
	if extended {
		cfg.Pool = larpredictor.ExtendedPool(window)
	}
	p, err := larpredictor.New(cfg)
	if err != nil {
		return err
	}

	sp, err := timeseries.SplitFraction(series.Values, split)
	if err != nil {
		return err
	}
	if err := p.Train(sp.Train); err != nil {
		return err
	}

	if forecast {
		pred, err := p.Forecast(series.Values[len(series.Values)-window:])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "forecast for %s at %s: %.6g (expert %s)\n",
			series.Name, series.TimeAt(series.Len()-1).Add(series.Interval), pred.Value, pred.SelectedName)
		return nil
	}

	res, err := p.Evaluate(sp.Test)
	if err != nil {
		return err
	}

	// NWS baseline over the same test frames.
	norm := p.Normalizer()
	trainFrames, err := timeseries.FrameSeries(norm.Apply(sp.Train), window)
	if err != nil {
		return err
	}
	testFrames, err := timeseries.FrameSeries(norm.Apply(sp.Test), window)
	if err != nil {
		return err
	}
	sel, err := nws.NewCumulativeMSE(p.Pool())
	if err != nil {
		return err
	}
	if _, err := sel.Run(trainFrames); err != nil {
		return err
	}
	nwsRes, err := sel.Run(testFrames)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "trace %s: %d samples, trained on %d, evaluated on %d frames\n",
		series.Name, series.Len(), len(sp.Train), res.N)
	fmt.Fprintf(out, "  normalized MSE: LAR %.4f | P-LAR (oracle) %.4f | NWS Cum.MSE %.4f\n",
		res.LARMSE, res.OracleMSE, nwsRes.MSE)
	for i, name := range p.Pool().Names() {
		fmt.Fprintf(out, "  expert %-10s %.4f\n", name, res.ExpertMSE[i])
	}
	fmt.Fprintf(out, "  best-expert forecasting accuracy: %.2f%%\n", 100*res.ForecastAccuracy)
	return nil
}
