package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// writeTraceFile materializes a synthetic trace as a CSV file.
func writeTraceFile(t *testing.T) string {
	t.Helper()
	ts := vmtrace.StandardTraceSet(5)
	s, err := ts.Get(vmtrace.VM2, vmtrace.CPUUsedSec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := timeseries.WriteCSV(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEvaluation(t *testing.T) {
	path := writeTraceFile(t)
	var buf bytes.Buffer
	if err := run(&buf, path, 5, 3, 2, 0.5, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace VM2_CPU_usedsec", "normalized MSE", "P-LAR", "NWS Cum.MSE",
		"expert LAST", "expert AR", "expert SW_AVG", "forecasting accuracy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunForecastMode(t *testing.T) {
	path := writeTraceFile(t)
	var buf bytes.Buffer
	if err := run(&buf, path, 5, 3, 2, 0.5, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "forecast for VM2_CPU_usedsec") {
		t.Errorf("forecast output = %q", buf.String())
	}
}

func TestRunExtendedPoolAndNoPCA(t *testing.T) {
	path := writeTraceFile(t)
	var buf bytes.Buffer
	if err := run(&buf, path, 5, 3, 0, 0.5, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expert SW_MEDIAN") {
		t.Errorf("extended pool not in output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, filepath.Join(t.TempDir(), "missing.csv"), 5, 3, 2, 0.5, false, false); err == nil {
		t.Error("missing file accepted")
	}
	// Corrupt CSV.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a\nvalid,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, bad, 5, 3, 2, 0.5, false, false); err == nil {
		t.Error("corrupt CSV accepted")
	}
	// Invalid split.
	path := writeTraceFile(t)
	if err := run(&bytes.Buffer{}, path, 5, 3, 2, 1.5, false, false); err == nil {
		t.Error("split > 1 accepted")
	}
	// Window larger than the series can support.
	if err := run(&bytes.Buffer{}, path, 400, 3, 2, 0.5, false, false); err == nil {
		t.Error("oversized window accepted")
	}
}
