package main

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/server"
)

// Durable state is one file, <dir>/predictd.snap: a gob snapFile framed by
// durable.WriteChecksummed (magic + payload + CRC32-IEEE footer) and written
// via durable.WriteFileAtomic, so a crash mid-snapshot leaves the previous
// complete snapshot in place. Under the default snapshot durability mode
// there is no WAL: predictd's clients own their data and can re-send the
// window since the last snapshot, so the contract is "latest snapshot
// wins". Under -durability=wal the snapshot additionally carries the
// idempotency table, and <dir>/predictd.wal covers every ack made since it
// was written (see wal.go).

const snapMagic = "LARPRED1"

// snapFile is the whole daemon's persisted state.
type snapFile struct {
	// Fingerprint digests the predictor-shaping options; a snapshot written
	// under one fingerprint is not restored under another.
	Fingerprint string
	Streams     map[string]streamState
	// Dedup is the idempotency table at capture time (WAL mode only). A
	// snapshot taken without it restores with an empty table, which is
	// exactly right for snapshot-mode files.
	Dedup server.DedupState
}

// streamState is one stream's persisted state: the core codec's framed
// predictor bytes plus the serving snapshot (latest observation + forecast)
// so a restarted daemon answers GET /v1/forecast before any new sample, and
// the forecast-history rings so range queries and feed resume cursors
// survive the restart too. History is absent in pre-history snapshots (gob
// leaves it zero) and ignored by older binaries — the field is
// backward-compatible in both directions.
type streamState struct {
	Online  []byte
	Cache   server.Snapshot
	History server.HistoryState
}

// snapStore owns a predictd state directory.
type snapStore struct {
	dir         string
	fingerprint string

	// Durability instruments; nil-safe when no registry was attached.
	snapshots   *obs.Counter
	restored    *obs.Counter
	quarantines *obs.Counter
}

// fingerprintOptions digests every option that shapes predictor state. The
// per-stream core codec carries its own config fingerprint too; this
// coarse check just lets the daemon log one clear line instead of N
// mismatch warnings.
func fingerprintOptions(o options) string {
	return fmt.Sprintf("window=%d train=%d audit=%d threshold=%g",
		o.window, o.trainSize, o.auditWin, o.threshold)
}

// openSnapStore creates the state directory if needed and binds durability
// counters on reg.
func openSnapStore(dir, fingerprint string, reg *obs.Registry) (*snapStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state dir: %w", err)
	}
	st := &snapStore{dir: dir, fingerprint: fingerprint}
	if reg != nil {
		st.snapshots = reg.Counter1("larpredictor_snapshots_total",
			"Completed durable snapshots.")
		st.restored = reg.Counter1("larpredictor_pipelines_recovered_total",
			"Streams whose predictor state was restored on warm restart.")
		st.quarantines = reg.Counter1("larpredictor_state_quarantines_total",
			"Damaged state files quarantined during warm restart.")
	}
	return st, nil
}

func (st *snapStore) path() string { return filepath.Join(st.dir, "predictd.snap") }

// save captures every stream's predictor state and serving snapshot and
// writes one atomic checksummed file. Per-stream capture runs inside
// eng.Do, which holds the stream's shard lock: the predictor bytes, the
// cache entry, and the history rings read right after describe the same
// step, because OnResult (the cache and history writer) runs under that
// same lock. dedup, when non-nil, is the idempotency table to persist
// alongside (WAL mode); hist, when non-nil, contributes each stream's
// forecast-history state.
func (st *snapStore) save(eng *engine.Engine, cache *server.ResultCache,
	hist *server.HistoryStore, dedup *server.Dedup) error {
	snap := snapFile{Fingerprint: st.fingerprint, Streams: map[string]streamState{}}
	if dedup != nil {
		snap.Dedup = dedup.State()
	}
	var ids []string
	eng.Each(func(id string, _ engine.StreamStats) { ids = append(ids, id) })
	var saveErr error
	for _, id := range ids {
		id := id
		eng.Do(id, func(o *core.Online) {
			var buf bytes.Buffer
			if err := o.SaveState(&buf); err != nil {
				if saveErr == nil {
					saveErr = fmt.Errorf("save %s: %w", id, err)
				}
				return
			}
			ss := streamState{Online: buf.Bytes()}
			ss.Cache, _ = cache.Latest(id)
			if hist != nil {
				ss.History, _ = hist.State(id)
			}
			snap.Streams[id] = ss
		})
	}
	if saveErr != nil {
		return saveErr
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	err := durable.WriteFileAtomic(st.path(), func(w io.Writer) error {
		return durable.WriteChecksummed(w, snapMagic, payload.Bytes())
	})
	if err != nil {
		return err
	}
	st.snapshots.Inc()
	return nil
}

// restore performs the warm restart: it reads the snapshot (quarantining a
// damaged one and cold-starting), registers each stream's restored predictor
// with the engine, and primes the serving cache so the first forecast read
// needs no new samples. It returns how many streams were restored. logw
// receives one line per abnormal event.
// dedup, when non-nil, receives the snapshot's idempotency table so WAL
// replay and client retries dedup against everything the snapshot covers.
// hist, when non-nil, is primed with each stream's forecast-history rings;
// a snapshot written under a different history shape clamps on restore
// (history sizing is intentionally outside the fingerprint).
func (st *snapStore) restore(eng *engine.Engine, cache *server.ResultCache,
	hist *server.HistoryStore, newStream func(id string) (*core.Online, error),
	dedup *server.Dedup, logw io.Writer) (int, error) {
	payload, err := durable.ReadChecksummedFile(st.path(), snapMagic)
	switch {
	case os.IsNotExist(err):
		return 0, nil // cold: nothing checkpointed yet
	case err != nil:
		st.quarantineAndLog(st.path(), err, logw)
		return 0, nil
	}
	var snap snapFile
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); derr != nil {
		st.quarantineAndLog(st.path(), derr, logw)
		return 0, nil
	}
	if snap.Fingerprint != st.fingerprint {
		// Valid snapshot from another configuration: not damage, just
		// unusable. Cold start and overwrite it at the next snapshot.
		fmt.Fprintf(logw, "predictd: snapshot was written by a different configuration (have %q, want %q), cold starting\n",
			snap.Fingerprint, st.fingerprint)
		return 0, nil
	}
	if dedup != nil {
		dedup.Restore(snap.Dedup)
	}
	restored := 0
	for id, ss := range snap.Streams {
		online, nerr := newStream(id)
		if nerr != nil {
			return restored, fmt.Errorf("restore %s: %w", id, nerr)
		}
		if rerr := online.RestoreState(bytes.NewReader(ss.Online)); rerr != nil {
			if errors.Is(rerr, core.ErrStateMismatch) {
				fmt.Fprintf(logw, "predictd: %s: predictor state mismatch, cold starting stream: %v\n", id, rerr)
				continue
			}
			fmt.Fprintf(logw, "predictd: %s: unreadable predictor state, cold starting stream: %v\n", id, rerr)
			continue
		}
		if rerr := eng.Register(id, online); rerr != nil {
			return restored, fmt.Errorf("restore %s: %w", id, rerr)
		}
		cache.Restore(id, ss.Cache)
		if hist != nil && ss.History.Seq > 0 {
			hist.Restore(id, ss.History)
		}
		restored++
		st.restored.Inc()
	}
	return restored, nil
}

// quarantineAndLog moves a damaged state file aside and counts it.
func (st *snapStore) quarantineAndLog(path string, cause error, logw io.Writer) {
	st.quarantines.Inc()
	moved, err := durable.Quarantine(path)
	if err != nil {
		fmt.Fprintf(logw, "predictd: quarantine %s failed: %v (cause: %v)\n", path, err, cause)
		return
	}
	fmt.Fprintf(logw, "predictd: quarantined %s -> %s: %v\n", path, moved, cause)
}
