package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/client"
	"github.com/acis-lab/larpredictor/internal/chaosproxy"
)

func newCrashClient(t *testing.T, addr, source string, maxAttempts int) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		BaseURL:          "http://" + addr,
		Source:           source,
		RequestTimeout:   2 * time.Second,
		MaxAttempts:      maxAttempts,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		BreakerThreshold: -1, // crash tests want every retry to reach the wire
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitApplied polls the stream's durable applied count until it reaches
// want, failing with the last observed state on timeout.
func waitApplied(t *testing.T, c *client.Client, stream string, want uint64) *client.ForecastResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last *client.ForecastResponse
	var lastErr error
	for time.Now().Before(deadline) {
		fr, err := c.Forecast(context.Background(), stream)
		if err == nil {
			last = fr
			if fr.Applied == want {
				return fr
			}
		} else {
			lastErr = err
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stream %s: applied never reached %d (last: %+v, err %v)", stream, want, last, lastErr)
	return nil
}

// TestPredictdWALCrashKill9NoAckedLoss is the durability contract test:
// every batch a WAL-mode daemon acked with 202 survives kill -9 (no final
// snapshot runs), and a client resending an already-acked batch after the
// restart is deduplicated — applied exactly once, end to end.
func TestPredictdWALCrashKill9NoAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	// snapEvery 0: the only durable copy of acked data is the WAL.
	h := startHelper(t, dir, 0)
	c := newCrashClient(t, h.addr, "crash-src", 6)

	const stream = "wal/crash"
	const batches, batchLen = 5, 10
	var seq uint64
	sent := make([][]client.Sample, 0, batches)
	for b := 0; b < batches; b++ {
		samples := make([]client.Sample, batchLen)
		for i := range samples {
			seq++
			samples[i] = client.Sample{Stream: stream, TS: int64(seq), Value: 10 + float64(seq%7), Seq: seq}
		}
		resp, err := c.Ingest(context.Background(), samples)
		if err != nil {
			t.Fatalf("ingest batch %d: %v", b, err)
		}
		if resp.Accepted != batchLen || resp.Deduped != 0 {
			t.Fatalf("batch %d accepted/deduped = %d/%d, want %d/0", b, resp.Accepted, resp.Deduped, batchLen)
		}
		sent = append(sent, samples)
	}
	total := uint64(batches * batchLen)

	h.kill9()
	if err := h.start(); err != nil {
		t.Fatalf("restart after kill -9: %v\noutput:\n%s", err, h.out)
	}
	c2 := newCrashClient(t, h.addr, "crash-src", 6)

	// Every acked sample must be present after replay: the durable applied
	// count and the newest timestamp both match what was acknowledged.
	fr := waitApplied(t, c2, stream, total)
	if fr.LastTS != int64(total) {
		t.Errorf("after replay last_ts = %d, want %d", fr.LastTS, total)
	}

	// Resend an already-acked batch (same source, same seqs — the retry a
	// real client would issue after losing the 202): acked as fully
	// deduplicated, applied count unchanged.
	resp, err := c2.Ingest(context.Background(), sent[batches-1])
	if err != nil {
		t.Fatalf("resend acked batch: %v", err)
	}
	if resp.Accepted != 0 || resp.Deduped != batchLen {
		t.Errorf("resend accepted/deduped = %d/%d, want 0/%d", resp.Accepted, resp.Deduped, batchLen)
	}
	fr2, err := c2.Forecast(context.Background(), stream)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Applied != total {
		t.Errorf("applied after resend = %d, want %d (double-apply)", fr2.Applied, total)
	}
}

// TestChaosSoak drives keyed ingest through the fault-injecting proxy at a
// WAL-mode daemon that is kill -9'd and restarted repeatedly mid-stream.
// The client retries without limit, so at the end every sample was acked —
// and the soak passes only if the durable applied count equals exactly the
// distinct samples sent: nothing acked was lost, nothing applied twice.
// Forecasts must also keep serving through the chaos. Deterministic: the
// proxy's fault schedule is a pure function of its seed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak with child processes")
	}
	dir := t.TempDir()
	// Short periodic snapshots make the soak cross snapshot/WAL-truncate
	// boundaries, the subtlest part of the commit protocol.
	h := startHelper(t, dir, 300*time.Millisecond)

	proxy, err := chaosproxy.Start("127.0.0.1:0", chaosproxy.Config{
		Target:        h.addr,
		Seed:          42,
		LatencyProb:   0.20,
		LatencyMin:    time.Millisecond,
		LatencyMax:    10 * time.Millisecond,
		ResetProb:     0.08,
		PartialProb:   0.04,
		BlackholeProb: 0.04,
		BlackholeDur:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const nStreams, batches, batchLen = 3, 12, 10
	const perStream = uint64(batches * batchLen)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var senders sync.WaitGroup
	for s := 0; s < nStreams; s++ {
		s := s
		// Each sender talks through the proxy with unlimited retries: a
		// send returns only once the daemon acked it.
		c, cerr := client.New(client.Config{
			BaseURL:          "http://" + proxy.Addr(),
			Source:           fmt.Sprintf("soak-src-%d", s),
			RequestTimeout:   time.Second,
			MaxAttempts:      -1,
			BaseBackoff:      5 * time.Millisecond,
			MaxBackoff:       100 * time.Millisecond,
			BreakerThreshold: -1,
			Seed:             int64(100 + s),
		})
		if cerr != nil {
			t.Fatal(cerr)
		}
		senders.Add(1)
		go func() {
			defer senders.Done()
			stream := fmt.Sprintf("soak/stream-%d", s)
			var seq uint64
			for b := 0; b < batches; b++ {
				samples := make([]client.Sample, batchLen)
				for i := range samples {
					seq++
					samples[i] = client.Sample{Stream: stream, TS: int64(seq), Value: 10 + float64(seq%7), Seq: seq}
				}
				if _, err := c.Ingest(ctx, samples); err != nil {
					t.Errorf("stream %s batch %d never acked: %v", stream, b, err)
					return
				}
				time.Sleep(50 * time.Millisecond) // spread sends across the kill windows
			}
		}()
	}

	// A reader polls forecasts through the proxy for the whole soak; chaos
	// and restarts may fail individual reads, but some must succeed.
	var okReads atomic.Int64
	readerStop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		rc, rerr := client.New(client.Config{
			BaseURL:          "http://" + proxy.Addr(),
			RequestTimeout:   500 * time.Millisecond,
			MaxAttempts:      1,
			BreakerThreshold: -1,
			Seed:             7,
		})
		if rerr != nil {
			t.Error(rerr)
			return
		}
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			if _, err := rc.Forecast(ctx, "soak/stream-0"); err == nil {
				okReads.Add(1)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// The kill loop runs on the test goroutine: three SIGKILLs spread
	// across the sending window, each followed by a restart on the same
	// state directory and a proxy retarget.
	for k := 0; k < 3; k++ {
		time.Sleep(700 * time.Millisecond)
		h.kill9()
		if err := h.start(); err != nil {
			t.Fatalf("restart %d after kill -9: %v\noutput:\n%s", k, err, h.out)
		}
		proxy.SetTarget(h.addr)
	}

	senders.Wait()
	close(readerStop)
	readers.Wait()
	if t.Failed() {
		t.FailNow() // a sender already reported the root cause
	}
	if okReads.Load() == 0 {
		t.Error("no forecast was served during the chaos window")
	}

	// Verify directly against the daemon (no proxy): applied must equal
	// sent, exactly, for every stream — no acked loss, no double apply.
	vc := newCrashClient(t, h.addr, "verify", 6)
	for s := 0; s < nStreams; s++ {
		stream := fmt.Sprintf("soak/stream-%d", s)
		fr := waitApplied(t, vc, stream, perStream)
		if fr.Applied != perStream {
			t.Errorf("%s applied = %d, want exactly %d", stream, fr.Applied, perStream)
		}
	}
}
