package main

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/server"
)

// BenchmarkIngestWAL measures the ack path of one ingest batch in both
// durability modes: mode=snapshot is the bare engine enqueue, mode=wal
// adds the dedup check, WAL append, and group-commit fsync the 202 waits
// on. The design target is WAL-mode p50 ack latency within 2× of
// snapshot-only under concurrent load (RunParallel amortizes each fsync
// across every batch in the commit window); CI's bench-regression job
// guards this benchmark against regressions via benchguard.
func BenchmarkIngestWAL(b *testing.B) {
	const batchLen = 10
	for _, mode := range []string{"snapshot", "wal"} {
		b.Run("mode="+mode, func(b *testing.B) {
			eng := newReplayEngine(b)
			defer eng.Close()
			var ws *walStore
			if mode == "wal" {
				var err error
				ws, err = openWALStore(b.TempDir(), time.Millisecond, nil, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				defer ws.close()
			}
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				source := fmt.Sprintf("bench-src-%d", w)
				stream := fmt.Sprintf("bench/stream-%d", w)
				var seq uint64
				batch := make([]server.KeyedSample, batchLen)
				for pb.Next() {
					for i := range batch {
						seq++
						batch[i] = server.KeyedSample{
							Sample: engine.Sample{ID: stream, TS: int64(seq), Value: float64(seq % 13)},
							Source: source,
							Seq:    seq,
						}
					}
					if ws != nil {
						if _, _, err := ws.ingest(eng, batch); err != nil {
							b.Fatal(err)
						}
					} else {
						samples := make([]engine.Sample, batchLen)
						for i, ks := range batch {
							samples[i] = ks.Sample
						}
						if _, err := eng.IngestBatch(samples); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}
