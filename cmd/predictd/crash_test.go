package main

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/server"
)

// TestPredictdCrashRestartServesSameForecasts is the end-to-end durability
// check: train streams over HTTP while readers poll concurrently, stop the
// daemon through the SIGTERM path (graceful drain writes the snapshot), then
// restart against the same state directory and require the same latest
// forecasts before a single new sample arrives — and that training continues
// from restored state.
func TestPredictdCrashRestartServesSameForecasts(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.stateDir = dir

	d := startDaemon(t, o)
	streams := []string{"VM2/CPU/CPU_usedsec", "VM4/MEM/phymem"}

	// Forecast readers run throughout ingest: the drain must be clean even
	// with reads in flight.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for _, s := range streams {
		s := s
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				resp, err := http.Get(d.url + "/v1/forecast/" + s)
				if err != nil {
					t.Errorf("forecast %s during ingest: %v", s, err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for _, s := range streams {
		ingestBatch(t, d.url, s, 0, 60)
	}
	before := map[string]server.ForecastResponse{}
	tail := time.Now().Add(10 * time.Second)
	for _, s := range streams {
		fr := waitForForecast(t, d.url, s)
		for fr.LastTS != 59 { // wait out the async tail of the batch
			if time.Now().After(tail) {
				t.Fatalf("%s: batch tail never landed (last_ts %d)", s, fr.LastTS)
			}
			time.Sleep(10 * time.Millisecond)
			getJSON(t, d.url+"/v1/forecast/"+s, &fr)
		}
		before[s] = fr
	}
	close(stopReaders)
	readers.Wait()

	out, err := d.stop(t)
	if err != nil {
		t.Fatalf("graceful stop: %v\noutput:\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "predictd.snap")); err != nil {
		t.Fatalf("drain left no snapshot: %v", err)
	}

	// Restart on the same state directory: the warm restart must serve the
	// exact forecasts the previous run last issued, with no new samples.
	d2 := startDaemon(t, o)
	if !strings.Contains(d2.out.String(), "warm restart") {
		t.Errorf("restart output missing warm-restart line:\n%s", d2.out.String())
	}
	for _, s := range streams {
		var fr server.ForecastResponse
		if resp := getJSON(t, d2.url+"/v1/forecast/"+s, &fr); resp.StatusCode != http.StatusOK {
			t.Fatalf("restarted daemon: forecast %s = %d, want 200", s, resp.StatusCode)
		}
		want, got := before[s], fr
		// Processed counts samples this process stepped; a restarted daemon
		// legitimately starts at zero.
		want.Processed, got.Processed = 0, 0
		if !reflect.DeepEqual(want, got) {
			t.Errorf("restarted forecast for %s diverged:\n before: %+v\n after:  %+v", s, want, got)
		}
	}

	// Restored predictors keep accepting samples and forecasting.
	ingestBatch(t, d2.url, streams[0], 60, 10)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var fr server.ForecastResponse
		getJSON(t, d2.url+"/v1/forecast/"+streams[0], &fr)
		if fr.LastTS == 69 {
			if fr.Forecast == nil {
				t.Error("restored stream stopped forecasting after new samples")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored stream never processed new samples (last_ts %d)", fr.LastTS)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := d2.stop(t); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestPredictdCorruptSnapshotColdStarts damages the snapshot and requires the
// daemon to quarantine it and come up cold instead of refusing to start.
func TestPredictdCorruptSnapshotColdStarts(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.stateDir = dir

	d := startDaemon(t, o)
	ingestBatch(t, d.url, "s1", 0, 40)
	waitForForecast(t, d.url, "s1")
	if _, err := d.stop(t); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "predictd.snap")
	if err := os.WriteFile(snap, []byte("LARPRED1 garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, o)
	var fr server.ForecastResponse
	if resp := getJSON(t, d2.url+"/v1/forecast/s1", &fr); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cold start after corruption: forecast = %d, want 404", resp.StatusCode)
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot was not quarantined: %v", err)
	}
	// A cold daemon over a quarantined snapshot still works end to end.
	ingestBatch(t, d2.url, "s1", 0, 40)
	waitForForecast(t, d2.url, "s1")
	if _, err := d2.stop(t); err != nil {
		t.Fatal(err)
	}
}
