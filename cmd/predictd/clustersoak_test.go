package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/client"
	"github.com/acis-lab/larpredictor/internal/chaosproxy"
	"github.com/acis-lab/larpredictor/internal/cluster"
)

// clusterNodeProc is one soak member: a helper process plus the chaos proxy
// that is its stable cluster-visible address. The daemon restarts on a new
// random port; the proxy address never changes, so peers (and clients)
// survive the restart by retargeting the proxy.
type clusterNodeProc struct {
	id    string
	h     *helperProc
	proxy *chaosproxy.Proxy
}

// clusterStatus mirrors internal/cluster's StatusDoc — decoded loosely so
// the soak does not import wire-struct internals it doesn't assert on.
type clusterStatus struct {
	Node    string `json:"node"`
	Members []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	} `json:"members"`
	Handoff struct {
		StreamsServed   uint64 `json:"streams_served"`
		StreamsReceived uint64 `json:"streams_received"`
	} `json:"handoff"`
}

func fetchStatus(addr string) (*clusterStatus, error) {
	c := http.Client{Timeout: time.Second}
	resp, err := c.Get("http://" + addr + "/v1/cluster/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var st clusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// waitAllAlive polls every node's status until each sees the full
// membership alive.
func waitAllAlive(t *testing.T, nodes []*clusterNodeProc, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		ok := true
		for _, n := range nodes {
			st, err := fetchStatus(n.h.addr)
			if err != nil {
				ok = false
				break
			}
			for _, m := range st.Members {
				if m.State != "alive" {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("cluster never converged to all-alive")
}

// TestClusterSoak is the replicated-cluster chaos contract: three WAL-mode
// daemons behind per-node chaos proxies (all inter-node and client traffic
// crosses the fault injector), keyed ingest spread across every node while
// one member is kill -9'd mid-stream and later restarted. It passes only if
//
//   - every acked sample is applied exactly once (per-stream applied ==
//     distinct samples sent, verified at the stream's home owner and at its
//     follower),
//   - forecast reads keep succeeding throughout — bounded gap, successes
//     during the downtime window,
//   - the rejoined node resumes via warm handoff (streams received > 0)
//     rather than cold-starting its predictors.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak with child processes")
	}

	ids := []string{"a", "b", "c"}
	nodes := make([]*clusterNodeProc, len(ids))
	// Proxies first: their addresses are the stable membership. Targets are
	// placeholders until each daemon publishes its real port.
	peers := ""
	for i, id := range ids {
		proxy, err := chaosproxy.Start("127.0.0.1:0", chaosproxy.Config{
			Target:              "127.0.0.1:1", // retargeted below
			Seed:                int64(1000 + i),
			LatencyProb:         0.15,
			LatencyMin:          time.Millisecond,
			LatencyMax:          8 * time.Millisecond,
			ResetProb:           0.03,
			ThrottleProb:        0.03,
			ThrottleBytesPerSec: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		nodes[i] = &clusterNodeProc{id: id, proxy: proxy}
		if i > 0 {
			peers += ","
		}
		peers += id + "=" + proxy.Addr()
	}
	for i, id := range ids {
		h := &helperProc{
			t:         t,
			stateDir:  t.TempDir(),
			snapEvery: 250 * time.Millisecond,
			extraEnv: []string{
				"PREDICTD_HELPER_NODE_ID=" + id,
				"PREDICTD_HELPER_PEERS=" + peers,
				"PREDICTD_HELPER_REPLICATION=2",
				"PREDICTD_HELPER_HB=100ms",
				"PREDICTD_HELPER_SUSPECT=3",
				"PREDICTD_HELPER_DOWN=500ms",
			},
		}
		if err := h.start(); err != nil {
			t.Fatalf("start node %s: %v\noutput:\n%s", id, err, h.out)
		}
		t.Cleanup(func() {
			if h.cmd != nil && h.cmd.ProcessState == nil {
				h.cmd.Process.Kill()
				h.cmd.Wait()
			}
		})
		nodes[i].h = h
		nodes[i].proxy.SetTarget(h.addr)
	}
	byID := map[string]*clusterNodeProc{}
	var proxyAddrs []string
	for _, n := range nodes {
		byID[n.id] = n
		proxyAddrs = append(proxyAddrs, "http://"+n.proxy.Addr())
	}
	waitAllAlive(t, nodes, 15*time.Second)

	// One stream homed at each member, named by searching rendezvous order
	// — so the kill of node b provably takes out a stream's home owner.
	streams := map[string]string{}
	for _, home := range ids {
		for i := 0; ; i++ {
			name := fmt.Sprintf("soak/%s-%d", home, i)
			if cluster.Owners(ids, name)[0] == home {
				streams[home] = name
				break
			}
		}
	}

	// Sends must span the whole kill + downtime window (~4.5s): 40 batches
	// on a 125ms cadence ≈ 5s of continuous ingest, so the failover owner
	// applies samples the dead node never saw — which is what makes the
	// warm-handoff path load-bearing at rejoin.
	const batches, batchLen = 40, 10
	const perStream = uint64(batches * batchLen)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Senders: one per stream, cluster-aware (all three proxies as
	// endpoints), unlimited retries — a return means the cluster acked it.
	var senders sync.WaitGroup
	si := 0
	for _, stream := range streams {
		stream := stream
		c, cerr := client.New(client.Config{
			BaseURL:          proxyAddrs[si%len(proxyAddrs)],
			Endpoints:        proxyAddrs,
			Source:           fmt.Sprintf("soak-src-%d", si),
			RequestTimeout:   2 * time.Second,
			MaxAttempts:      -1,
			BaseBackoff:      5 * time.Millisecond,
			MaxBackoff:       150 * time.Millisecond,
			BreakerThreshold: -1,
			Seed:             int64(200 + si),
		})
		if cerr != nil {
			t.Fatal(cerr)
		}
		si++
		senders.Add(1)
		go func() {
			defer senders.Done()
			var seq uint64
			for b := 0; b < batches; b++ {
				samples := make([]client.Sample, batchLen)
				for i := range samples {
					seq++
					samples[i] = client.Sample{Stream: stream, TS: int64(seq), Value: 10 + float64(seq%7), Seq: seq}
				}
				if _, err := c.Ingest(ctx, samples); err != nil {
					t.Errorf("stream %s batch %d never acked: %v", stream, b, err)
					return
				}
				time.Sleep(125 * time.Millisecond)
			}
		}()
	}

	// Reader: polls every stream round-robin through the proxies. The soak
	// asserts reads never stop succeeding: the longest gap between
	// successful forecasts stays bounded, and successes land during the
	// downtime window too.
	var maxGap atomic.Int64
	var downtimeReads atomic.Int64
	inDowntime := &atomic.Bool{}
	readerStop := make(chan struct{})
	var readers sync.WaitGroup

	// History reader: range-reads the killed node's stream through the
	// proxies for the whole soak. Any replica's ring answers a history read
	// (never proxied), so these too must stay gap-bounded across the kill —
	// and the observed seq must never move backwards.
	var maxHistGap atomic.Int64
	var downtimeHistReads atomic.Int64
	var histHighWater atomic.Uint64
	readers.Add(1)
	go func() {
		defer readers.Done()
		hc, herr := client.New(client.Config{
			BaseURL:          proxyAddrs[1], // start at b: the kill forces a failover read
			Endpoints:        proxyAddrs,
			RequestTimeout:   time.Second,
			MaxAttempts:      2,
			BaseBackoff:      5 * time.Millisecond,
			MaxBackoff:       50 * time.Millisecond,
			BreakerThreshold: -1,
			Seed:             11,
		})
		if herr != nil {
			t.Error(herr)
			return
		}
		lastOK := time.Now()
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			hr, err := hc.History(ctx, streams["b"], client.HistoryQuery{Limit: 32})
			if err == nil {
				if gap := time.Since(lastOK); gap.Nanoseconds() > maxHistGap.Load() {
					maxHistGap.Store(gap.Nanoseconds())
				}
				lastOK = time.Now()
				if inDowntime.Load() {
					downtimeHistReads.Add(1)
				}
				// Replication is asynchronous, so a failover replica may trail
				// the dead owner — no cross-node monotonicity to assert here;
				// hold on to the high-water mark instead.
				if hr.Seq > histHighWater.Load() {
					histHighWater.Store(hr.Seq)
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	readers.Add(1)
	go func() {
		defer readers.Done()
		rc, rerr := client.New(client.Config{
			BaseURL:          proxyAddrs[0],
			Endpoints:        proxyAddrs,
			RequestTimeout:   time.Second,
			MaxAttempts:      2,
			BaseBackoff:      5 * time.Millisecond,
			MaxBackoff:       50 * time.Millisecond,
			BreakerThreshold: -1,
			Seed:             7,
		})
		if rerr != nil {
			t.Error(rerr)
			return
		}
		names := make([]string, 0, len(streams))
		for _, s := range streams {
			names = append(names, s)
		}
		lastOK := time.Now()
		for i := 0; ; i++ {
			select {
			case <-readerStop:
				return
			default:
			}
			if _, err := rc.Forecast(ctx, names[i%len(names)]); err == nil {
				if gap := time.Since(lastOK); gap.Nanoseconds() > maxGap.Load() {
					maxGap.Store(gap.Nanoseconds())
				}
				lastOK = time.Now()
				if inDowntime.Load() {
					downtimeReads.Add(1)
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	// Kill -9 node b mid-ingest: its streams fail over to the next member
	// in rendezvous order while senders and reader keep running.
	time.Sleep(1500 * time.Millisecond)
	b := byID["b"]
	b.h.kill9()
	inDowntime.Store(true)
	time.Sleep(3 * time.Second)
	inDowntime.Store(false)

	// Restart b on its original state directory and retarget its proxy: it
	// must pull a warm handoff covering what it missed, then rejoin.
	if err := b.h.start(); err != nil {
		t.Fatalf("restart b after kill -9: %v\noutput:\n%s", err, b.h.out)
	}
	b.proxy.SetTarget(b.h.addr)
	waitAllAlive(t, nodes, 20*time.Second)

	senders.Wait()
	close(readerStop)
	readers.Wait()
	if t.Failed() {
		t.FailNow() // a sender already reported the root cause
	}

	if gap := time.Duration(maxGap.Load()); gap > 5*time.Second {
		t.Errorf("longest forecast outage %v, want under 5s (reads must keep succeeding through failover)", gap)
	}
	if downtimeReads.Load() == 0 {
		t.Error("no forecast succeeded while node b was down; failover must keep serving reads")
	}
	if gap := time.Duration(maxHistGap.Load()); gap > 5*time.Second {
		t.Errorf("longest history-read outage %v, want under 5s (range reads must survive failover)", gap)
	}
	if downtimeHistReads.Load() == 0 {
		t.Error("no history read succeeded while node b was down; a replica ring must keep answering")
	}
	if histHighWater.Load() == 0 {
		t.Error("history reads never observed data; the reader asserted nothing")
	}

	// Exactly-once, end to end: for every stream, the durable applied count
	// at its home owner and at its follower equals the distinct samples
	// sent — nothing acked was lost to the kill, nothing applied twice
	// through forward/replicate/handoff/replay.
	for home, stream := range streams {
		replicas := cluster.ReplicaSet(ids, stream, 2)
		for _, member := range replicas {
			vc := newCrashClient(t, byID[member].h.addr, "verify", 8)
			fr := waitApplied(t, vc, stream, perStream)
			if fr.Applied != perStream {
				t.Errorf("stream %s (home %s) at %s: applied = %d, want exactly %d",
					stream, home, member, fr.Applied, perStream)
			}
			if fr.Forecast == nil && fr.Processed >= 20 {
				t.Errorf("stream %s at %s: trained predictor serves no forecast after rejoin", stream, member)
			}

			// The replica's history ring converges with its applied count:
			// the full soak fits the raw window, so the range read returns a
			// contiguous seq line ending at perStream — across kill -9,
			// handoff, and WAL replay.
			hr := waitHistorySeq(t, vc, stream, perStream)
			if n := len(hr.Entries); uint64(n) != perStream {
				t.Errorf("stream %s at %s: history entries = %d, want %d", stream, member, n, perStream)
			} else {
				for i, e := range hr.Entries {
					if e.Seq != uint64(i+1) {
						t.Errorf("stream %s at %s: entry %d has seq %d — gap or duplicate in history",
							stream, member, i, e.Seq)
						break
					}
				}
			}
			coarse, err := vc.History(ctx, stream, client.HistoryQuery{Step: 16})
			if err != nil {
				t.Errorf("stream %s at %s: consolidated read: %v", stream, member, err)
			} else if n := len(coarse.Rows); n == 0 || coarse.Rows[n-1].EndSeq != perStream {
				t.Errorf("stream %s at %s: consolidated tail = %+v, want EndSeq %d",
					stream, member, coarse.Rows, perStream)
			}
		}
	}

	// Warm handoff: the rejoined node reports stream state received from
	// peers — it resumed coverage rather than cold-starting.
	st, err := fetchStatus(b.h.addr)
	if err != nil {
		t.Fatalf("status at rejoined b: %v", err)
	}
	if st.Handoff.StreamsReceived == 0 {
		t.Error("rejoined node received no handoff streams; warm handoff did not run")
	}
}
