package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/server"
)

// testOptions returns a daemon configuration that trains after 20 samples so
// tests reach real forecasts quickly.
func testOptions() options {
	return options{
		listen:          "127.0.0.1:0",
		shards:          2,
		queueDepth:      256,
		backpressure:    "block",
		window:          5,
		trainSize:       20,
		auditWin:        6,
		threshold:       2.0,
		maxInFlight:     64,
		reqTimeout:      5 * time.Second,
		maxBody:         1 << 20,
		shutdownTimeout: 10 * time.Second,
	}
}

// daemon is one run() instance serving on a real listener.
type daemon struct {
	url    string
	out    *bytes.Buffer
	cancel context.CancelFunc
	done   chan error
}

// startDaemon launches run() on a random port and waits until it accepts
// connections.
func startDaemon(t *testing.T, o options) *daemon {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addr := make(chan string, 1)
	prev := o.addrReady
	o.addrReady = func(a string) {
		if prev != nil {
			prev(a)
		}
		addr <- a
	}
	d := &daemon{out: &bytes.Buffer{}, cancel: cancel, done: make(chan error, 1)}
	go func() { d.done <- run(ctx, d.out, o) }()
	select {
	case a := <-addr:
		d.url = "http://" + a
	case err := <-d.done:
		cancel()
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon did not bind within 10s")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case <-d.done:
		case <-time.After(15 * time.Second):
			t.Error("daemon did not exit during cleanup")
		}
	})
	return d
}

// stop triggers the SIGTERM path (context cancellation) and waits for run to
// return, handing back its error and captured output.
func (d *daemon) stop(t *testing.T) (string, error) {
	t.Helper()
	d.cancel()
	select {
	case err := <-d.done:
		// Re-arm done so the Cleanup's receive does not block.
		d.done <- err
		return d.out.String(), err
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop within 15s")
		return "", nil
	}
}

func postJSON(t *testing.T, url string, doc any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, doc any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if doc != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, doc); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp
}

// ingestBatch posts n samples for one stream with timestamps start..start+n-1.
func ingestBatch(t *testing.T, baseURL, stream string, start, n int) {
	t.Helper()
	samples := make([]server.IngestSample, n)
	for i := range samples {
		ts := start + i
		samples[i] = server.IngestSample{Stream: stream, TS: int64(ts), Value: 10 + float64(ts%7)}
	}
	resp, body := postJSON(t, baseURL+"/v1/ingest", server.IngestRequest{Samples: samples})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest %s: status %d, body %s", stream, resp.StatusCode, body)
	}
}

// waitForForecast polls the forecast endpoint until the stream serves a
// non-nil forecast document.
func waitForForecast(t *testing.T, baseURL, stream string) server.ForecastResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var fr server.ForecastResponse
		resp := getJSON(t, baseURL+"/v1/forecast/"+stream, &fr)
		if resp.StatusCode == http.StatusOK && fr.Forecast != nil {
			return fr
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream %s: no forecast within deadline (last status %d)", stream, resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPredictdServesForecasts drives the full HTTP surface of a stateless
// daemon: ingest to a trained forecast, stream listing, health, and metrics.
func TestPredictdServesForecasts(t *testing.T) {
	d := startDaemon(t, testOptions())

	ingestBatch(t, d.url, "VM2/CPU/CPU_usedsec", 0, 40)
	ingestBatch(t, d.url, "VM3/NET/rx_bytes", 0, 40)

	fr := waitForForecast(t, d.url, "VM2/CPU/CPU_usedsec")
	if fr.Stream != "VM2/CPU/CPU_usedsec" {
		t.Errorf("forecast stream = %q (slash-containing IDs must route)", fr.Stream)
	}
	// Ingest is asynchronous; wait for the tail of the batch to land.
	deadline := time.Now().Add(10 * time.Second)
	for fr.LastTS != 39 {
		if time.Now().After(deadline) {
			t.Fatalf("last_ts = %d, want 39", fr.LastTS)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, d.url+"/v1/forecast/VM2/CPU/CPU_usedsec", &fr)
	}
	waitForForecast(t, d.url, "VM3/NET/rx_bytes")

	var sr server.StreamsResponse
	if resp := getJSON(t, d.url+"/v1/streams", &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("streams: status %d", resp.StatusCode)
	}
	if sr.Total != 2 || len(sr.Streams) != 2 {
		t.Errorf("streams = %d/%d docs, want 2/2", sr.Total, len(sr.Streams))
	}

	if resp := getJSON(t, d.url+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	mresp, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"larpredictor_engine_ingested_total", "predictd_http_requests_total"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	out, err := d.stop(t)
	if err != nil {
		t.Fatalf("clean stop: %v", err)
	}
	if !strings.Contains(out, "drained and stopped") {
		t.Errorf("shutdown line missing from output:\n%s", out)
	}
}

// TestPredictdConcurrentIngestForecastChaos runs writers and readers against
// the daemon at once while a chaos hook panics inside one stream's predictor
// step: the poisoned stream is reported as such, every healthy stream keeps
// forecasting, and the daemon survives to drain cleanly.
func TestPredictdConcurrentIngestForecastChaos(t *testing.T) {
	o := testOptions()
	var badSeen atomic.Int64
	o.stepHook = func(id string) {
		if id == "chaos/bad" && badSeen.Add(1) == 3 {
			panic("chaos: injected step failure")
		}
	}
	d := startDaemon(t, o)

	streams := []string{"vm1/cpu", "vm2/cpu", "vm3/mem"}
	var wg sync.WaitGroup
	for _, s := range streams {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := 0; batch < 4; batch++ {
				samples := make([]server.IngestSample, 10)
				for i := range samples {
					ts := batch*10 + i
					samples[i] = server.IngestSample{Stream: s, TS: int64(ts), Value: 10 + float64(ts%7)}
				}
				body, _ := json.Marshal(server.IngestRequest{Samples: samples})
				resp, err := http.Post(d.url+"/v1/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("ingest %s: %v", s, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("ingest %s: status %d", s, resp.StatusCode)
				}
			}
		}()
	}
	// The chaos stream ingests alongside; its third sample panics the step.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			body, _ := json.Marshal(server.IngestRequest{Stream: "chaos/bad", TS: int64(i), Value: 1})
			resp, err := http.Post(d.url+"/v1/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("ingest chaos/bad: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Readers hammer forecasts and the stream list while ingest runs; any
	// status is acceptable mid-flight (404 before first sample), no errors.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for _, s := range append([]string{"chaos/bad"}, streams...) {
		s := s
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				resp, err := http.Get(d.url + "/v1/forecast/" + s)
				if err != nil {
					t.Errorf("forecast %s during ingest: %v", s, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	readers.Wait()

	for _, s := range streams {
		waitForForecast(t, d.url, s)
	}
	// The poisoned stream must be reported; poisoning happens on the shard
	// worker, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var fr server.ForecastResponse
		getJSON(t, d.url+"/v1/forecast/chaos/bad", &fr)
		if fr.Poisoned {
			if fr.Fault == "" {
				t.Error("poisoned stream has empty fault description")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chaos/bad never reported poisoned")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := d.stop(t); err != nil {
		t.Fatalf("clean stop after chaos: %v", err)
	}
}

// TestPredictdRejectBackpressure maps engine saturation onto HTTP: with a
// one-deep queue, a stalled worker, and the reject policy, ingest answers
// 429 with a Retry-After header.
func TestPredictdRejectBackpressure(t *testing.T) {
	o := testOptions()
	o.shards = 1
	o.queueDepth = 1
	o.maxBatch = 1
	o.backpressure = "reject"
	gate := make(chan struct{})
	o.stepHook = func(string) { <-gate }
	// Once the gate closes every stalled step returns immediately, so the
	// drain during shutdown completes.
	defer close(gate)
	d := startDaemon(t, o)

	saw429 := false
	for i := 0; i < 100 && !saw429; i++ {
		resp, body := postJSON(t, d.url+"/v1/ingest", server.IngestRequest{Stream: "s", TS: int64(i), Value: 1})
		switch resp.StatusCode {
		case http.StatusAccepted:
			// queue or worker still had room
		case http.StatusTooManyRequests:
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After header")
			}
			var ir server.IngestResponse
			if err := json.Unmarshal(body, &ir); err != nil {
				t.Fatalf("decode 429 body: %v", err)
			}
			if ir.Accepted != 0 || ir.Rejected != 1 {
				t.Errorf("429 body accepted/rejected = %d/%d, want 0/1", ir.Accepted, ir.Rejected)
			}
		default:
			t.Fatalf("unexpected ingest status %d: %s", resp.StatusCode, body)
		}
	}
	if !saw429 {
		t.Fatal("never saw 429 despite one-deep queue and stalled worker")
	}
}

// TestPredictdBadFlags exercises option validation through run.
func TestPredictdBadFlags(t *testing.T) {
	o := testOptions()
	o.backpressure = "bounce"
	if err := run(context.Background(), io.Discard, o); err == nil ||
		!strings.Contains(err.Error(), "backpressure") {
		t.Errorf("bad policy: err = %v, want backpressure parse error", err)
	}

	o = testOptions()
	o.listen = "127.0.0.1:-1"
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Error("bad listen address: err = nil, want listen error")
	}
}
