package main

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/client"
	"github.com/acis-lab/larpredictor/internal/chaosproxy"
)

// waitHistorySeq polls the stream's history until its seq reaches want.
func waitHistorySeq(t *testing.T, c *client.Client, stream string, want uint64) *client.HistoryResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last *client.HistoryResponse
	var lastErr error
	for time.Now().Before(deadline) {
		hr, err := c.History(context.Background(), stream, client.HistoryQuery{})
		if err == nil {
			last = hr
			if hr.Seq >= want {
				return hr
			}
		} else {
			lastErr = err
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stream %s: history seq never reached %d (last %+v, err %v)", stream, want, last, lastErr)
	return nil
}

// TestPredictdHistorySurvivesKill9 is the read-path durability contract:
// after a kill -9 (no final snapshot — all state comes back through WAL
// replay), the restarted daemon serves the same forecast history, entry for
// entry, and keeps appending to it with consistent seq numbers.
func TestPredictdHistorySurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	h := startHelper(t, dir, 0) // WAL is the only durable copy
	c := newCrashClient(t, h.addr, "hist-src", 6)

	const stream = "hist/crash"
	const total = 40
	var seq uint64
	samples := make([]client.Sample, total)
	for i := range samples {
		seq++
		samples[i] = client.Sample{Stream: stream, TS: int64(seq), Value: 10 + float64(seq%7), Seq: seq}
	}
	if _, err := c.Ingest(context.Background(), samples); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	before := waitHistorySeq(t, c, stream, total)
	if len(before.Entries) != total {
		t.Fatalf("pre-crash entries = %d, want %d", len(before.Entries), total)
	}
	coarseBefore, err := c.History(context.Background(), stream, client.HistoryQuery{Step: 16})
	if err != nil {
		t.Fatal(err)
	}

	h.kill9()
	if err := h.start(); err != nil {
		t.Fatalf("restart after kill -9: %v\noutput:\n%s", err, h.out)
	}
	c2 := newCrashClient(t, h.addr, "hist-src", 6)

	// WAL replay must rebuild the identical history: same seqs, same
	// observations, same forecasts (replay is deterministic).
	after := waitHistorySeq(t, c2, stream, total)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("raw history diverged across kill -9:\n before: %+v\n after:  %+v", before, after)
	}
	coarseAfter, err := c2.History(context.Background(), stream, client.HistoryQuery{Step: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coarseBefore, coarseAfter) {
		t.Errorf("consolidated history diverged across kill -9:\n before: %+v\n after:  %+v",
			coarseBefore, coarseAfter)
	}

	// New samples continue the same seq line — the resume cursor stays
	// monotonic across the crash.
	more := make([]client.Sample, 10)
	for i := range more {
		seq++
		more[i] = client.Sample{Stream: stream, TS: int64(seq), Value: 12, Seq: seq}
	}
	if _, err := c2.Ingest(context.Background(), more); err != nil {
		t.Fatal(err)
	}
	grown := waitHistorySeq(t, c2, stream, total+10)
	last := grown.Entries[len(grown.Entries)-1]
	if last.Seq != total+10 || last.TS != int64(total+10) {
		t.Errorf("post-restart tail entry = %+v, want seq/ts %d", last, total+10)
	}
}

// TestPredictdSSEExactlyOnceAcrossRestart kills the daemon under a live
// subscription and requires the client to deliver every forecast event
// exactly once: the reconnect resumes from Last-Event-ID against the
// WAL-rebuilt history ring, so nothing is repeated and nothing is lost.
func TestPredictdSSEExactlyOnceAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	h := startHelper(t, dir, 0)

	// A restart changes the daemon's port; the plain pass-through proxy
	// gives the subscriber a stable address across it.
	proxy, err := chaosproxy.Start("127.0.0.1:0", chaosproxy.Config{Target: h.addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := client.New(client.Config{
		BaseURL:          "http://" + proxy.Addr(),
		Source:           "sse-src",
		RequestTimeout:   2 * time.Second,
		MaxAttempts:      -1, // the subscription must outlive the restart
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       100 * time.Millisecond,
		BreakerThreshold: -1,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const stream = "sse/crash"
	const firstBatch, secondBatch = 30, 20
	var mu sync.Mutex
	var seqs []uint64
	arrived := make(chan uint64, firstBatch+secondBatch+8)
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	subDone := make(chan error, 1)
	go func() {
		subDone <- c.SubscribeForecasts(subCtx, []string{stream}, func(ev client.ForecastEvent) error {
			mu.Lock()
			seqs = append(seqs, ev.Seq)
			mu.Unlock()
			arrived <- ev.Seq
			return nil
		})
	}()

	ingest := func(cl *client.Client, from, n int) {
		t.Helper()
		samples := make([]client.Sample, n)
		for i := range samples {
			s := uint64(from + i)
			samples[i] = client.Sample{Stream: stream, TS: int64(s), Value: 10 + float64(s%7), Seq: s}
		}
		if _, err := cl.Ingest(context.Background(), samples); err != nil {
			t.Fatalf("ingest from %d: %v", from, err)
		}
	}
	waitSeq := func(want uint64) {
		t.Helper()
		deadline := time.After(20 * time.Second)
		for {
			select {
			case s := <-arrived:
				if s == want {
					return
				}
			case <-deadline:
				mu.Lock()
				defer mu.Unlock()
				t.Fatalf("event seq %d never arrived (got %v)", want, seqs)
			}
		}
	}

	ingest(c, 1, firstBatch)
	waitSeq(firstBatch)

	h.kill9()
	if err := h.start(); err != nil {
		t.Fatalf("restart after kill -9: %v\noutput:\n%s", err, h.out)
	}
	proxy.SetTarget(h.addr)

	ingest(newCrashClient(t, h.addr, "sse-src", 6), firstBatch+1, secondBatch)
	waitSeq(firstBatch + secondBatch)

	subCancel()
	<-subDone

	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != firstBatch+secondBatch {
		t.Fatalf("delivered %d events, want exactly %d: %v", len(seqs), firstBatch+secondBatch, seqs)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("event %d has seq %d — duplicate or gap across the restart: %v", i, s, seqs)
		}
	}
}
