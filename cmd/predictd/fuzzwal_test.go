package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/server"
)

func newReplayEngine(tb testing.TB) *engine.Engine {
	tb.Helper()
	eng, err := engine.New(engine.Config{
		Shards:     1,
		QueueDepth: 1024,
		Policy:     engine.Block,
		NewStream: func(id string) (*core.Online, error) {
			return core.NewOnline(core.OnlineConfig{
				Predictor:    core.DefaultConfig(5),
				TrainSize:    20,
				AuditWindow:  6,
				MSEThreshold: 2.0,
			})
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// walSeedBytes builds a well-formed WAL holding three keyed batches for
// stream "fz" and returns the raw file bytes for fuzz seeding.
func walSeedBytes(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, _, _, err := durable.OpenBatchWAL(path)
	if err != nil {
		f.Fatal(err)
	}
	var seq uint64
	for b := 0; b < 3; b++ {
		batch := make([]server.KeyedSample, 4)
		for i := range batch {
			seq++
			batch[i] = server.KeyedSample{
				Sample: engine.Sample{ID: "fz", TS: int64(seq), Value: float64(seq)},
				Source: "fuzz-src",
				Seq:    seq,
			}
		}
		if err := w.Append(encodeWALBatch(batch)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		f.Fatal(err)
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzWALReplay feeds arbitrary bytes to the daemon's WAL recovery path:
// whatever is on disk — torn tails, bit flips, CRC-valid records whose
// payload no longer decodes, foreign files — recovery must never panic,
// must quarantine or truncate the damage, and must be stable: replaying
// the repaired log a second time yields the identical record count and
// applied totals (nothing double-applies, nothing lost after repair).
func FuzzWALReplay(f *testing.F) {
	valid := walSeedBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn tail inside the last record
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip mid-log
	f.Add(flipped)
	f.Add([]byte("not a write-ahead log at all"))
	f.Add([]byte{})
	f.Add(valid[:16]) // bare header

	// CRC-valid framing around an undecodable payload: replay must
	// truncate at it rather than fail the boot.
	badPayload := func() []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "bad.wal")
		w, _, _, err := durable.OpenBatchWAL(path)
		if err != nil {
			f.Fatal(err)
		}
		w.Append([]byte{0xFF, 0x01, 0x02})
		w.Sync()
		w.Close()
		raw, _ := os.ReadFile(path)
		return raw
	}()
	f.Add(append(append([]byte(nil), valid...), badPayload[16:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		replayOnce := func(dir string) (records int, applied uint64, ok bool) {
			ws, err := openWALStore(dir, 0, nil, io.Discard)
			if err != nil {
				return 0, 0, false
			}
			defer ws.close()
			eng := newReplayEngine(t)
			defer eng.Close()
			recs, _, rerr := ws.replay(eng, io.Discard)
			if rerr != nil {
				return 0, 0, false
			}
			var total uint64
			for stream := range ws.dedup.State().Applied {
				n, _ := ws.dedup.Applied(stream)
				total += n
			}
			return recs, total, true
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "predictd.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs1, applied1, ok := replayOnce(dir)
		if !ok {
			return // refusing damaged input without panicking is a pass
		}
		// First recovery repaired the file in place (truncation and/or
		// quarantine); a second boot over the same directory must land on
		// exactly the same state.
		recs2, applied2, ok := replayOnce(dir)
		if !ok {
			t.Fatal("second replay failed over a repaired WAL")
		}
		if recs2 != recs1 || applied2 != applied1 {
			t.Fatalf("unstable recovery: first %d records/%d applied, second %d/%d",
				recs1, applied1, recs2, applied2)
		}
	})
}
