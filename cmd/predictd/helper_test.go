package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// The WAL durability tests need a real kill -9: an in-process run() always
// takes the graceful-drain path, which writes a snapshot and would mask WAL
// bugs. So the crash tests re-exec this test binary as a helper process
// (the classic exec.Command(os.Args[0], "-test.run=...") pattern) and
// SIGKILL it mid-ingest.

// TestHelperPredictdProcess is not a test: it is the daemon body the crash
// tests run as a child process. Guarded by env so normal runs skip it.
func TestHelperPredictdProcess(t *testing.T) {
	if os.Getenv("PREDICTD_HELPER") != "1" {
		t.Skip("helper body for crash tests; started via startHelper")
	}
	o := testOptions()
	o.stateDir = os.Getenv("PREDICTD_HELPER_STATE")
	o.durability = "wal"
	o.walSync = time.Millisecond
	o.snapEvery = 0
	if v := os.Getenv("PREDICTD_HELPER_SNAP_EVERY"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad PREDICTD_HELPER_SNAP_EVERY: %v", err)
		}
		o.snapEvery = d
	}
	// Cluster mode: the soak sets the node's identity and the full
	// membership (peer addresses are the chaos proxies, so inter-node
	// traffic crosses the fault injector).
	if id := os.Getenv("PREDICTD_HELPER_NODE_ID"); id != "" {
		o.nodeID = id
		o.peers = os.Getenv("PREDICTD_HELPER_PEERS")
		o.replication = 2
		if v := os.Getenv("PREDICTD_HELPER_REPLICATION"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				t.Fatalf("bad PREDICTD_HELPER_REPLICATION: %v", err)
			}
			o.replication = n
		}
		parseDur := func(key string, into *time.Duration) {
			if v := os.Getenv(key); v != "" {
				d, err := time.ParseDuration(v)
				if err != nil {
					t.Fatalf("bad %s: %v", key, err)
				}
				*into = d
			}
		}
		parseDur("PREDICTD_HELPER_HB", &o.hbEvery)
		parseDur("PREDICTD_HELPER_DOWN", &o.downAfter)
		if v := os.Getenv("PREDICTD_HELPER_SUSPECT"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				t.Fatalf("bad PREDICTD_HELPER_SUSPECT: %v", err)
			}
			o.suspectAfter = n
		}
	}
	// Write-then-rename so the parent never reads a half-written addr.
	publishAddr := func(file string) func(string) {
		return func(a string) {
			tmp := file + ".tmp"
			if err := os.WriteFile(tmp, []byte(a), 0o644); err == nil {
				os.Rename(tmp, file)
			}
		}
	}
	o.addrReady = publishAddr(os.Getenv("PREDICTD_HELPER_ADDRFILE"))
	if bf := os.Getenv("PREDICTD_HELPER_BINARY_ADDRFILE"); bf != "" {
		o.binaryListen = "127.0.0.1:0"
		o.binaryAddrReady = publishAddr(bf)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, o); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// helperProc manages one predictd child process across kill/restart cycles.
type helperProc struct {
	t         *testing.T
	stateDir  string
	snapEvery time.Duration
	// extraEnv carries additional PREDICTD_HELPER_* settings (the cluster
	// soak's node identity and membership); reapplied on every restart.
	extraEnv []string
	// binary asks the child to also open a wire-protocol ingest listener
	// and publish its address (binAddr).
	binary bool

	cmd     *exec.Cmd
	addr    string
	binAddr string
	out     *bytes.Buffer
}

// startHelper launches the daemon as a child process in WAL mode on the
// given state directory and waits for it to publish its listen address.
// snapEvery 0 disables periodic snapshots, forcing all durability through
// the WAL.
func startHelper(t *testing.T, stateDir string, snapEvery time.Duration) *helperProc {
	t.Helper()
	return launchHelper(t, &helperProc{t: t, stateDir: stateDir, snapEvery: snapEvery})
}

// startBinaryHelper is startHelper with the wire-protocol ingest listener
// enabled; the child publishes both addresses before start returns.
func startBinaryHelper(t *testing.T, stateDir string, snapEvery time.Duration) *helperProc {
	t.Helper()
	return launchHelper(t, &helperProc{t: t, stateDir: stateDir, snapEvery: snapEvery, binary: true})
}

func launchHelper(t *testing.T, h *helperProc) *helperProc {
	t.Helper()
	if err := h.start(); err != nil {
		t.Fatalf("start helper: %v\noutput:\n%s", err, h.out)
	}
	t.Cleanup(func() {
		if h.cmd != nil && h.cmd.ProcessState == nil {
			h.cmd.Process.Kill()
			h.cmd.Wait()
		}
	})
	return h
}

// start (re)spawns the child and blocks until it serves; call again after
// kill9 to model a crash restart (from the test goroutine — it registers
// cleanups).
func (h *helperProc) start() error {
	dir, err := os.MkdirTemp("", "predictd-helper-addr")
	if err != nil {
		return err
	}
	h.t.Cleanup(func() { os.RemoveAll(dir) })
	addrFile := filepath.Join(dir, "addr")
	binAddrFile := filepath.Join(dir, "binaddr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperPredictdProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"PREDICTD_HELPER=1",
		"PREDICTD_HELPER_STATE="+h.stateDir,
		"PREDICTD_HELPER_ADDRFILE="+addrFile,
		"PREDICTD_HELPER_SNAP_EVERY="+h.snapEvery.String(),
	)
	if h.binary {
		cmd.Env = append(cmd.Env, "PREDICTD_HELPER_BINARY_ADDRFILE="+binAddrFile)
	}
	cmd.Env = append(cmd.Env, h.extraEnv...)
	h.out = &bytes.Buffer{}
	cmd.Stdout, cmd.Stderr = h.out, h.out
	if err := cmd.Start(); err != nil {
		return err
	}
	h.cmd = cmd
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, rerr := os.ReadFile(addrFile)
		if rerr == nil && len(b) > 0 {
			if !h.binary {
				h.addr = string(b)
				return nil
			}
			if bb, berr := os.ReadFile(binAddrFile); berr == nil && len(bb) > 0 {
				h.addr, h.binAddr = string(b), string(bb)
				return nil
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return errHelperNoAddr
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var errHelperNoAddr = errTimeout("helper never published its listen address")

type errTimeout string

func (e errTimeout) Error() string { return string(e) }

// kill9 SIGKILLs the child — no drain, no final snapshot — and reaps it.
func (h *helperProc) kill9() {
	h.t.Helper()
	if err := h.cmd.Process.Kill(); err != nil {
		h.t.Fatalf("kill -9 helper: %v", err)
	}
	h.cmd.Wait()
}
