package main

import (
	"context"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/wire"
)

// TestPredictdBinaryCrashKill9NoAckedLoss is the WAL durability contract
// applied to the binary transport: every batch a WAL-mode daemon acked with
// StatusOK over the wire protocol survives kill -9, and resending an
// already-acked batch over a fresh binary connection after the restart is
// fully deduplicated — the mirror of TestPredictdWALCrashKill9NoAckedLoss.
func TestPredictdBinaryCrashKill9NoAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	// snapEvery 0: the only durable copy of acked data is the WAL.
	h := startBinaryHelper(t, dir, 0)

	dial := func(addr string) *wire.Conn {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		conn, err := wire.Dial(ctx, addr, wire.ConnConfig{})
		if err != nil {
			t.Fatalf("dial binary ingest %s: %v", addr, err)
		}
		return conn
	}
	conn := dial(h.binAddr)

	const stream = "wal/bincrash"
	const source = "bincrash-src"
	const batches, batchLen = 5, 10
	var seq uint64
	sent := make([][]wire.Sample, 0, batches)
	for b := 0; b < batches; b++ {
		samples := make([]wire.Sample, batchLen)
		for i := range samples {
			seq++
			samples[i] = wire.Sample{Stream: stream, TS: int64(seq), Value: 10 + float64(seq%7), Seq: seq}
		}
		ack, err := conn.Ingest(context.Background(), source, samples)
		if err != nil {
			t.Fatalf("binary ingest batch %d: %v", b, err)
		}
		if ack.Status != wire.StatusOK || ack.Accepted != batchLen || ack.Deduped != 0 {
			t.Fatalf("batch %d ack = %+v, want OK with %d/0", b, ack, batchLen)
		}
		sent = append(sent, samples)
	}
	conn.Close()
	total := uint64(batches * batchLen)

	h.kill9()
	if err := h.start(); err != nil {
		t.Fatalf("restart after kill -9: %v\noutput:\n%s", err, h.out)
	}

	// Every binary-acked sample must be present after WAL replay; the
	// verification reads go through the HTTP API — same durable state.
	c2 := newCrashClient(t, h.addr, source, 6)
	fr := waitApplied(t, c2, stream, total)
	if fr.LastTS != int64(total) {
		t.Errorf("after replay last_ts = %d, want %d", fr.LastTS, total)
	}

	// Resend the last binary-acked batch over a fresh binary connection
	// (the retry a client issues after losing the ack): the (source, seq)
	// keys must dedup it to zero accepted, applied count unchanged.
	conn2 := dial(h.binAddr)
	defer conn2.Close()
	ack, err := conn2.Ingest(context.Background(), source, sent[batches-1])
	if err != nil {
		t.Fatalf("resend acked batch over binary: %v", err)
	}
	if ack.Status != wire.StatusOK || ack.Accepted != 0 || ack.Deduped != batchLen {
		t.Errorf("resend ack = %+v, want OK with 0/%d", ack, batchLen)
	}
	fr2, err := c2.Forecast(context.Background(), stream)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Applied != total {
		t.Errorf("applied after resend = %d, want %d (double-apply)", fr2.Applied, total)
	}
}
