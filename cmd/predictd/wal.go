package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/server"
)

// WAL durability mode makes the 202 ack a real promise: every ingest batch
// is deduplicated against the idempotency table, appended to a CRC-framed
// batch WAL, and group-commit fsynced before any sample is enqueued — so a
// kill -9 after the ack can never lose the batch. Restart restores the last
// snapshot, then replays the WAL through the normal engine ingest path
// (torn or undecodable tails are truncated away, a foreign file is
// quarantined, exactly like monitord's recovery). A completed snapshot
// truncates the WAL, since everything it protected is now in the snapshot.
//
// Locking: request-path commits hold mu.RLock across dedup+append+enqueue;
// the snapshot path holds mu.Lock across drain+capture+reset, so no batch
// can land between "in the snapshot" and "in the WAL" — each acked sample
// is durably in exactly one of the two. commitMu additionally serializes
// dedup-mark+append so a concurrent duplicate (a client retrying a batch
// whose first send is still in flight) can never pass the dedup check
// twice; a mark only survives commitMu release if its record was appended.

// walStore owns predictd's write-ahead log, idempotency table, and group
// syncer.
type walStore struct {
	mu       sync.RWMutex // RLock: commit path; Lock: snapshot capture+reset
	commitMu sync.Mutex   // serializes dedup marks with WAL appends
	wal      *durable.BatchWAL
	dedup    *server.Dedup
	sync     *groupSyncer

	// pending holds the records recovered at open, until replay consumes
	// them.
	pending [][]byte

	appends     *obs.Counter
	dedupHits   *obs.Counter
	replayed    *obs.Counter
	quarantines *obs.Counter
}

func walPath(dir string) string { return filepath.Join(dir, "predictd.wal") }

// openWALStore opens (or creates) the state directory's WAL, recovering its
// intact records for replay. A file that is not a predictd WAL is
// quarantined and a fresh log started; a torn tail is truncated. syncEvery
// is the group-commit window: appends buffer for at most that long before
// one fsync covers them all (0 syncs every commit).
func openWALStore(dir string, syncEvery time.Duration, reg *obs.Registry, logw io.Writer) (*walStore, error) {
	ws := &walStore{dedup: server.NewDedup()}
	if reg != nil {
		ws.appends = reg.Counter1("predictd_wal_appends_total",
			"Ingest batches appended to the write-ahead log.")
		ws.dedupHits = reg.Counter1("predictd_dedup_hits_total",
			"Keyed samples skipped as already-applied duplicates.")
		ws.replayed = reg.Counter1("predictd_wal_replayed_records_total",
			"WAL records replayed through the engine on warm restart.")
		ws.quarantines = reg.Counter1("predictd_wal_quarantines_total",
			"WAL files quarantined or tails truncated during recovery.")
	}
	path := walPath(dir)
	w, recs, truncated, err := durable.OpenBatchWAL(path)
	if errors.Is(err, durable.ErrWALFormat) {
		ws.quarantines.Inc()
		moved, qerr := durable.Quarantine(path)
		if qerr != nil {
			return nil, fmt.Errorf("quarantine foreign WAL: %w", qerr)
		}
		fmt.Fprintf(logw, "predictd: quarantined %s -> %s: %v\n", path, moved, err)
		w, recs, truncated, err = durable.OpenBatchWAL(path)
	}
	if err != nil {
		return nil, err
	}
	if truncated > 0 {
		ws.quarantines.Inc()
		fmt.Fprintf(logw, "predictd: truncated %d bytes of torn WAL tail from %s\n", truncated, path)
	}
	ws.wal = w
	ws.pending = recs
	ws.sync = newGroupSyncer(w.Sync, syncEvery)
	return ws, nil
}

// ingest is the request-path commit, wired as server.Config.Ingest: dedup,
// durable append, group-commit fsync, then the normal engine enqueue. When
// it returns without error the batch is on disk — the 202 the handler sends
// is crash-safe.
func (ws *walStore) ingest(eng *engine.Engine, batch []server.KeyedSample) (accepted, deduped int, err error) {
	ws.mu.RLock()
	defer ws.mu.RUnlock()

	ws.commitMu.Lock()
	fresh := make([]server.KeyedSample, 0, len(batch))
	for _, ks := range batch {
		if ks.Source != "" && ks.Seq != 0 && !ws.dedup.Apply(ks.ID, ks.Source, ks.Seq) {
			deduped++
			ws.dedupHits.Inc()
			continue
		}
		fresh = append(fresh, ks)
	}
	var gen uint64
	if len(fresh) > 0 {
		if aerr := ws.wal.Append(encodeWALBatch(fresh)); aerr != nil {
			// The batch did not commit: withdraw the marks so a client
			// retry is admitted rather than silently deduplicated away.
			for _, ks := range fresh {
				if ks.Source != "" && ks.Seq != 0 {
					ws.dedup.Revert(ks.ID, ks.Source, ks.Seq)
				}
			}
			ws.commitMu.Unlock()
			return 0, deduped, aerr
		}
		ws.appends.Inc()
		gen = ws.sync.noteAppend()
	}
	ws.commitMu.Unlock()

	if len(fresh) == 0 {
		return 0, deduped, nil
	}
	if serr := ws.sync.wait(gen); serr != nil {
		// The fsync failed: durability is unknown, so refuse the ack. The
		// marks stay — the record may well be on disk — and the client's
		// retry will be deduplicated if it is.
		return 0, deduped, serr
	}
	samples := make([]engine.Sample, len(fresh))
	for i, ks := range fresh {
		samples[i] = ks.Sample
	}
	accepted, err = eng.IngestBatch(samples)
	// Under the Block policy (which WAL mode requires) the only enqueue
	// failure is a closing engine; the batch is already durable, so replay
	// applies it after restart and the client's retry dedups cleanly.
	return accepted, deduped, err
}

// replay feeds the records recovered at open through the normal engine
// ingest path, marking idempotency keys as it goes, and drains the engine
// so restored forecasts are served before the listener opens. A record
// whose payload no longer decodes ends the replay: the WAL is truncated
// back to the last good record, mirroring torn-tail recovery.
func (ws *walStore) replay(eng *engine.Engine, logw io.Writer) (records, samples int, err error) {
	for i, rec := range ws.pending {
		batch, derr := decodeWALBatch(rec)
		if derr != nil {
			ws.quarantines.Inc()
			fmt.Fprintf(logw, "predictd: WAL record %d undecodable (%v); truncating %d trailing records\n",
				i, derr, len(ws.pending)-i)
			if terr := ws.wal.TruncateRecords(i); terr != nil {
				return records, samples, terr
			}
			break
		}
		enqueue := make([]engine.Sample, 0, len(batch))
		for _, ks := range batch {
			if ks.Source != "" && ks.Seq != 0 && !ws.dedup.Apply(ks.ID, ks.Source, ks.Seq) {
				continue // already covered by the snapshot or an earlier record
			}
			enqueue = append(enqueue, ks.Sample)
		}
		if len(enqueue) > 0 {
			if _, ierr := eng.IngestBatch(enqueue); ierr != nil {
				return records, samples, fmt.Errorf("replay record %d: %w", i, ierr)
			}
			samples += len(enqueue)
		}
		records++
		ws.replayed.Inc()
	}
	ws.pending = nil
	eng.Drain()
	return records, samples, nil
}

// truncate resets the WAL after a completed snapshot. Callers hold mu.Lock.
func (ws *walStore) truncate() error { return ws.wal.Reset() }

// snapshot captures a coherent snapshot+WAL pair. With new commits held
// out by the exclusive lock, the engine is drained so every WAL-covered
// sample is reflected in predictor state, the snapshot (including the
// idempotency table) is written atomically, and only then is the WAL
// reset: an acked sample is durably in the snapshot or the WAL at every
// instant, never neither.
func (ws *walStore) snapshot(st *snapStore, eng *engine.Engine, cache *server.ResultCache,
	hist *server.HistoryStore) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	eng.Drain()
	if err := st.save(eng, cache, hist, ws.dedup); err != nil {
		return err
	}
	return ws.truncate()
}

// close stops the syncer and closes the log.
func (ws *walStore) close() error {
	ws.sync.close()
	return ws.wal.Close()
}

// ---- group-commit syncer ----

// groupSyncer batches fsyncs: appenders note their append and wait; one
// background fsync, at most every interval, covers every append noted
// before it ran. This keeps the per-ack cost at one fsync per commit window
// rather than one per request.
type groupSyncer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	syncFn   func() error
	interval time.Duration

	appended uint64 // generation of the newest append
	synced   uint64 // generation covered by the last completed fsync
	err      error  // outcome of the last fsync
	closed   bool
}

func newGroupSyncer(syncFn func() error, interval time.Duration) *groupSyncer {
	g := &groupSyncer{syncFn: syncFn, interval: interval}
	g.cond = sync.NewCond(&g.mu)
	go g.run()
	return g
}

// noteAppend registers an append and returns its generation for wait.
func (g *groupSyncer) noteAppend() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.appended++
	gen := g.appended
	g.cond.Broadcast()
	return gen
}

// wait blocks until an fsync covering gen has completed and returns its
// outcome.
func (g *groupSyncer) wait(gen uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.synced < gen && !g.closed {
		g.cond.Wait()
	}
	if g.synced < gen {
		return errors.New("predictd: WAL syncer closed")
	}
	return g.err
}

func (g *groupSyncer) run() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		for g.appended == g.synced && !g.closed {
			g.cond.Wait()
		}
		if g.closed {
			return
		}
		if g.interval > 0 {
			// Let the commit window fill so one fsync covers more acks.
			g.mu.Unlock()
			time.Sleep(g.interval)
			g.mu.Lock()
		}
		target := g.appended
		g.mu.Unlock()
		err := g.syncFn()
		g.mu.Lock()
		g.synced = target
		g.err = err
		g.cond.Broadcast()
	}
}

func (g *groupSyncer) close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// ---- WAL record codec ----

// Record payload: version byte, uvarint sample count, then per sample:
// uvarint stream length + bytes, zigzag-varint TS, 8-byte LE float bits,
// uvarint source length + bytes, uvarint seq. The framing layer already
// checksums the bytes; this codec only needs to be unambiguous and strict.
const walBatchVersion = 1

// maxWALBatchSamples caps a decoded batch; a count beyond it means the
// record is not ours even though the checksum verified.
const maxWALBatchSamples = 1 << 20

func encodeWALBatch(batch []server.KeyedSample) []byte {
	buf := make([]byte, 0, 1+10+len(batch)*32)
	buf = append(buf, walBatchVersion)
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for _, ks := range batch {
		buf = binary.AppendUvarint(buf, uint64(len(ks.ID)))
		buf = append(buf, ks.ID...)
		buf = binary.AppendVarint(buf, ks.TS)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ks.Value))
		buf = binary.AppendUvarint(buf, uint64(len(ks.Source)))
		buf = append(buf, ks.Source...)
		buf = binary.AppendUvarint(buf, ks.Seq)
	}
	return buf
}

var errWALDecode = errors.New("predictd: malformed WAL batch record")

func decodeWALBatch(payload []byte) ([]server.KeyedSample, error) {
	if len(payload) == 0 || payload[0] != walBatchVersion {
		return nil, errWALDecode
	}
	p := payload[1:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxWALBatchSamples {
		return nil, errWALDecode
	}
	p = p[n:]
	// A sample needs at least 12 encoded bytes; a count the payload cannot
	// hold is corruption, caught here before it sizes an allocation.
	if count*12 > uint64(len(p)) {
		return nil, errWALDecode
	}
	readString := func() (string, bool) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return "", false
		}
		s := string(p[n : n+int(l)])
		p = p[n+int(l):]
		return s, true
	}
	batch := make([]server.KeyedSample, 0, count)
	for i := uint64(0); i < count; i++ {
		var ks server.KeyedSample
		var ok bool
		if ks.ID, ok = readString(); !ok || ks.ID == "" {
			return nil, errWALDecode
		}
		ts, n := binary.Varint(p)
		if n <= 0 {
			return nil, errWALDecode
		}
		p = p[n:]
		if len(p) < 8 {
			return nil, errWALDecode
		}
		ks.TS = ts
		ks.Value = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		if ks.Source, ok = readString(); !ok {
			return nil, errWALDecode
		}
		seq, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errWALDecode
		}
		p = p[n:]
		ks.Seq = seq
		batch = append(batch, ks)
	}
	if len(p) != 0 {
		return nil, errWALDecode
	}
	return batch, nil
}
