// Command predictd serves the sharded prediction engine over HTTP/JSON: a
// networked front end for callers that stream observations in and read
// forecasts back instead of linking the library.
//
//	predictd -listen :8100 -state /var/lib/predictd
//
// Endpoints:
//
//	POST /v1/ingest            one sample or a batch; 202 on acceptance,
//	                           429 + Retry-After when the reject policy sheds
//	                           load, 503 while draining
//	GET  /v1/forecast/{stream} the stream's latest forecast and health
//	GET  /v1/streams           paginated per-stream statistics
//	GET  /metrics              Prometheus text-format metrics
//	GET  /healthz              readiness; flips to 503 during drain
//
// Streams are created on first ingest — no registration step. With -state the
// daemon snapshots every stream's predictor and latest forecast periodically
// and again during graceful shutdown, so a restart serves the previous run's
// forecasts immediately and keeps training from where it left off. With
// -durability=wal every acked ingest batch is additionally fsynced to a
// write-ahead log before the 202 goes out, and client-assigned (source, seq)
// keys are deduplicated so retried batches apply exactly once — a kill -9
// loses nothing that was acknowledged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/acis-lab/larpredictor/internal/cluster"
	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/server"
	"github.com/acis-lab/larpredictor/internal/tournament"
	"github.com/acis-lab/larpredictor/internal/wire"
)

func main() {
	var (
		listen     = flag.String("listen", ":8100", "HTTP listen address")
		binListen  = flag.String("binary-listen", "", "binary ingest listen address (framed wire protocol); empty disables it")
		shards     = flag.Int("shards", 0, "prediction-engine shards (0 = one per CPU)")
		queueDepth = flag.Int("queue-depth", 1024, "per-shard ingest queue depth")
		maxBatch   = flag.Int("max-batch", 0, "max samples a shard worker steps per drain (0 = engine default)")
		backpress  = flag.String("backpressure", "block", "ingest policy when a shard queue fills: block, drop-oldest, or reject")
		window     = flag.Int("window", 5, "prediction window size m")
		train      = flag.Int("train", 60, "samples before initial training")
		audit      = flag.Int("audit", 12, "QA audit window (scored predictions)")
		thresh     = flag.Float64("threshold", 2.0, "QA normalized-MSE retrain threshold")
		tourney    = flag.Bool("tournament", true, "enable the tournament meta-selector tier between the trained model and the windowed-MSE selector")
		drift      = flag.Bool("drift", true, "enable proactive drift demotion to the tournament tier (requires -tournament)")
		stateDir   = flag.String("state", "", "state directory for durable snapshots; empty runs stateless")
		snapEvery  = flag.Duration("snapshot-every", 5*time.Minute, "interval between durable snapshots (0 disables periodic snapshots)")
		durability = flag.String("durability", "snapshot", "durability mode: snapshot (acks best-effort until the next snapshot) or wal (every ack fsynced to a write-ahead log; requires -state and -backpressure=block)")
		walSync    = flag.Duration("wal-sync", 2*time.Millisecond, "group-commit window: max time an acked batch waits for its shared fsync (0 syncs every batch)")
		inflight   = flag.Int("max-inflight", 256, "max concurrently served /v1 requests before shedding with 503")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handler timeout")
		maxBody    = flag.Int64("max-body", 1<<20, "max ingest request body bytes")

		historyRaw   = flag.Int("history-raw", 512, "per-stream raw forecast-history ring size in samples")
		historyTiers = flag.String("history-tiers", "", "consolidated history tiers as stepsxrows,... (e.g. 16x360,256x360); empty uses the defaults")
		bulkStreams  = flag.Int("max-bulk-streams", 256, "max streams one bulk forecast or subscribe request may name")

		nodeID      = flag.String("node-id", "", "this node's cluster member ID; empty runs standalone")
		peers       = flag.String("peers", "", "static cluster membership as id=host:port,... (must include -node-id's entry)")
		replication = flag.Int("replication", 2, "copies of each stream across the cluster (owner + replication-1 followers)")
		hbEvery     = flag.Duration("heartbeat-every", 500*time.Millisecond, "cluster heartbeat probe interval")
		suspectN    = flag.Int("suspect-after", 3, "consecutive missed heartbeats before a peer is suspected")
		downAfter   = flag.Duration("down-after", 2*time.Second, "time a peer stays suspect before it is confirmed down")
	)
	flag.Parse()

	opts := options{
		listen:       *listen,
		binaryListen: *binListen,
		shards:       *shards,
		queueDepth:   *queueDepth,
		maxBatch:     *maxBatch,
		backpressure: *backpress,
		window:       *window,
		trainSize:    *train,
		auditWin:     *audit,
		threshold:    *thresh,
		tournament:   *tourney,
		drift:        *drift,
		stateDir:     *stateDir,
		snapEvery:    *snapEvery,
		durability:   *durability,
		walSync:      *walSync,
		maxInFlight:  *inflight,
		reqTimeout:   *reqTimeout,
		maxBody:      *maxBody,
		historyRaw:   *historyRaw,
		historyTiers: *historyTiers,
		bulkStreams:  *bulkStreams,
		nodeID:       *nodeID,
		peers:        *peers,
		replication:  *replication,
		hbEvery:      *hbEvery,
		suspectAfter: *suspectN,
		downAfter:    *downAfter,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

// options collects everything run needs; the zero-value hooks are inert.
type options struct {
	listen       string
	binaryListen string
	shards       int
	queueDepth   int
	maxBatch     int
	backpressure string
	window       int
	trainSize    int
	auditWin     int
	threshold    float64
	tournament   bool
	drift        bool
	stateDir     string
	snapEvery    time.Duration
	durability   string
	walSync      time.Duration
	maxInFlight  int
	reqTimeout   time.Duration
	maxBody      int64

	// Forecast-history shape: raw ring size and "stepsxrows,..." tier spec
	// (empty means server defaults). Sizing is outside the snapshot
	// fingerprint — a resized daemon clamps restored rings instead of cold
	// starting.
	historyRaw   int
	historyTiers string
	bulkStreams  int

	// Cluster mode: nodeID empty means standalone; otherwise peers names
	// the full static membership (including this node) and the daemon
	// routes, replicates, and fails over per the internal/cluster design.
	nodeID       string
	peers        string
	replication  int
	hbEvery      time.Duration
	suspectAfter int
	downAfter    time.Duration

	// addrReady, when set, receives the bound listen address once the
	// daemon is accepting connections — tests listen on :0 and learn the
	// port this way.
	addrReady func(addr string)
	// binaryAddrReady mirrors addrReady for the binary ingest listener.
	binaryAddrReady func(addr string)
	// stepHook, when set, runs on the shard worker before every predictor
	// step — the chaos hook tests use to stall or poison a stream.
	stepHook func(id string)
	// shutdownTimeout bounds the graceful drain; zero means 15s.
	shutdownTimeout time.Duration
}

// parseHistoryTiers parses the -history-tiers flag ("16x360,256x360") into
// tier specs; empty input selects the server defaults.
func parseHistoryTiers(s string) ([]server.HistoryTier, error) {
	if s == "" {
		return nil, nil
	}
	var tiers []server.HistoryTier
	for _, part := range strings.Split(s, ",") {
		var t server.HistoryTier
		if _, err := fmt.Sscanf(part, "%dx%d", &t.Steps, &t.Rows); err != nil {
			return nil, fmt.Errorf("bad history tier %q (want stepsxrows, e.g. 16x360)", part)
		}
		tiers = append(tiers, t)
	}
	return tiers, nil
}

func parsePolicy(s string) (engine.Policy, error) {
	switch s {
	case "block", "":
		return engine.Block, nil
	case "drop-oldest":
		return engine.DropOldest, nil
	case "reject":
		return engine.Reject, nil
	default:
		return 0, fmt.Errorf("unknown backpressure policy %q (want block, drop-oldest, or reject)", s)
	}
}

// run assembles cache, engine, durable store, and HTTP server, then serves
// until ctx is cancelled and performs the graceful drain: stop accepting,
// drain the engine, snapshot, close. It returns nil after a clean shutdown.
func run(ctx context.Context, out io.Writer, o options) error {
	policy, err := parsePolicy(o.backpressure)
	if err != nil {
		return err
	}
	walMode := false
	switch o.durability {
	case "", "snapshot":
	case "wal":
		// A WAL ack is a promise the sample will be applied, so the engine
		// must not be allowed to shed a committed batch: only the Block
		// policy guarantees enqueue-after-commit succeeds.
		if o.stateDir == "" {
			return errors.New("-durability=wal requires -state")
		}
		if policy != engine.Block {
			return errors.New("-durability=wal requires -backpressure=block")
		}
		walMode = true
	default:
		return fmt.Errorf("unknown durability mode %q (want snapshot or wal)", o.durability)
	}
	var members []cluster.Member
	if o.nodeID != "" {
		// Replication ships (source, seq) idempotency keys and warm handoff
		// ships dedup windows — both are WAL-mode machinery, and failover
		// without a durable local copy would silently cold-start streams.
		if !walMode {
			return errors.New("-node-id requires -durability=wal")
		}
		members, err = cluster.ParseMembers(o.peers)
		if err != nil {
			return err
		}
	}
	if o.drift && !o.tournament {
		return errors.New("-drift requires -tournament")
	}
	newStream := func(id string) (*core.Online, error) {
		cfg := core.OnlineConfig{
			Predictor:    core.DefaultConfig(o.window),
			TrainSize:    o.trainSize,
			AuditWindow:  o.auditWin,
			MSEThreshold: o.threshold,
		}
		// Tournament/drift configs participate in the snapshot config
		// fingerprint, so toggling the flags cold-starts restored streams
		// rather than silently reinterpreting their state.
		if o.tournament {
			cfg.Tournament = &tournament.Config{}
		}
		if o.drift {
			cfg.Drift = &tournament.DriftConfig{}
		}
		return core.NewOnline(cfg)
	}

	tiers, err := parseHistoryTiers(o.historyTiers)
	if err != nil {
		return err
	}
	hist, err := server.NewHistoryStore(server.HistoryConfig{RawRows: o.historyRaw, Tiers: tiers})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	cache := server.NewResultCache()
	eng, err := engine.New(engine.Config{
		Shards:     o.shards,
		QueueDepth: o.queueDepth,
		MaxBatch:   o.maxBatch,
		Policy:     policy,
		NewStream:  newStream,
		// Every result feeds both read-path stores on the shard worker: the
		// latest-forecast cache and the multi-resolution history rings.
		OnResult: func(r engine.Result) {
			cache.Record(r)
			hist.Record(r)
		},
		StepHook: o.stepHook,
		Metrics:  reg,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	// The binary ingest listener binds before the cluster node is built so
	// heartbeats can advertise its concrete address to peers; it starts
	// serving only once the HTTP server below exists to share its ingest
	// pipeline.
	var bln net.Listener
	if o.binaryListen != "" {
		bln, err = net.Listen("tcp", o.binaryListen)
		if err != nil {
			return fmt.Errorf("binary listen: %w", err)
		}
		defer bln.Close()
	}

	var st *snapStore
	var ws *walStore
	var node *cluster.Node
	if o.stateDir != "" {
		st, err = openSnapStore(o.stateDir, fingerprintOptions(o), reg)
		if err != nil {
			return err
		}
		if walMode {
			// Open the WAL before restoring so the snapshot's dedup table
			// is in place when replay runs.
			ws, err = openWALStore(o.stateDir, o.walSync, reg, os.Stderr)
			if err != nil {
				return err
			}
			defer ws.close()
		}
		var dedup *server.Dedup
		if ws != nil {
			dedup = ws.dedup
		}
		restored, rerr := st.restore(eng, cache, hist, newStream, dedup, os.Stderr)
		if rerr != nil {
			return rerr
		}
		if restored > 0 {
			fmt.Fprintf(out, "predictd: warm restart: %d streams restored from %s\n", restored, o.stateDir)
		}
		if o.nodeID != "" {
			binaryAddr := ""
			if bln != nil {
				binaryAddr = bln.Addr().String()
			}
			node, err = cluster.New(cluster.Config{
				Self:           o.nodeID,
				BinaryAddr:     binaryAddr,
				Members:        members,
				Replication:    o.replication,
				HeartbeatEvery: o.hbEvery,
				SuspectAfter:   o.suspectAfter,
				DownAfter:      o.downAfter,
				Engine:         eng,
				Cache:          cache,
				Dedup:          ws.dedup,
				NewStream:      newStream,
				History:        hist,
				Registry:       reg,
				Logw:           os.Stderr,
			})
			if err != nil {
				return err
			}
			// Warm handoff sits between snapshot restore and WAL replay:
			// peers that served this node's streams while it was away ship
			// their predictor state and dedup coverage, the coverage merges
			// into the local table, and replay then applies exactly the
			// samples nobody has — every acked sample lands once, whether it
			// was acked here before the crash or by the failover owner.
			hctx, hcancel := context.WithTimeout(ctx, 30*time.Second)
			if got := node.PullHandoff(hctx); got > 0 {
				fmt.Fprintf(out, "predictd: warm handoff: %d streams pulled from peers\n", got)
			}
			hcancel()
		}
		if ws != nil {
			recs, samples, rerr := ws.replay(eng, os.Stderr)
			if rerr != nil {
				return fmt.Errorf("WAL replay: %w", rerr)
			}
			if recs > 0 {
				fmt.Fprintf(out, "predictd: replayed %d WAL records (%d samples) from %s\n",
					recs, samples, o.stateDir)
			}
		}
	}

	// saveState is the one snapshot entry point; in WAL mode it runs the
	// coherent drain→snapshot→WAL-reset sequence.
	saveState := func() error {
		if ws != nil {
			return ws.snapshot(st, eng, cache, hist)
		}
		return st.save(eng, cache, hist, nil)
	}

	scfg := server.Config{
		Engine:         eng,
		Cache:          cache,
		History:        hist,
		Registry:       reg,
		MaxInFlight:    o.maxInFlight,
		RequestTimeout: o.reqTimeout,
		MaxBodyBytes:   o.maxBody,
		MaxBulkStreams: o.bulkStreams,
		OnDrain: func() {
			if st == nil {
				return
			}
			if serr := saveState(); serr != nil {
				fmt.Fprintln(os.Stderr, "predictd: final snapshot:", serr)
			}
		},
	}
	if ws != nil {
		scfg.Ingest = func(batch []server.KeyedSample) (int, int, error) {
			return ws.ingest(eng, batch)
		}
		scfg.Applied = ws.dedup.Applied
	}
	if node != nil {
		scfg.Cluster = node
		scfg.ClusterHandler = node.Handler()
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	if node != nil {
		// Wired before the listener opens: heartbeats answer 503 as soon as
		// the drain flips, telling peers to fail over before connections
		// start refusing.
		node.SetDraining(srv.Draining)
	}

	if bln != nil {
		wsrv, werr := wire.NewServer(wire.ServerConfig{
			Ingest:        srv.BinaryIngest,
			Draining:      srv.Draining,
			MaxFrameBytes: int(o.maxBody),
			Registry:      reg,
			Logw:          os.Stderr,
		})
		if werr != nil {
			return werr
		}
		go func() {
			// A dying binary listener degrades to HTTP-only ingest; it does
			// not take the daemon down.
			if serr := wsrv.Serve(bln); serr != nil {
				fmt.Fprintln(os.Stderr, "predictd: binary listener:", serr)
			}
		}()
		defer wsrv.Close()
		fmt.Fprintf(out, "predictd: binary ingest on %s\n", bln.Addr())
		if o.binaryAddrReady != nil {
			o.binaryAddrReady(bln.Addr().String())
		}
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	mode := "snapshot"
	if walMode {
		mode = "wal"
	}
	fmt.Fprintf(out, "predictd: serving on %s (policy %s, durability %s)\n", ln.Addr(), o.backpressure, mode)
	if node != nil {
		fmt.Fprintf(out, "predictd: cluster node %s of %d members (replication %d)\n",
			o.nodeID, len(members), o.replication)
	}
	if o.addrReady != nil {
		o.addrReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if node != nil {
		// Probers and replicators start once the listener is up, so peers'
		// first heartbeats of this node succeed.
		node.Start()
		defer node.Close()
	}

	var snapC <-chan time.Time
	if st != nil && o.snapEvery > 0 {
		t := time.NewTicker(o.snapEvery)
		defer t.Stop()
		snapC = t.C
	}

	for {
		select {
		case <-snapC:
			if serr := saveState(); serr != nil {
				fmt.Fprintln(os.Stderr, "predictd: periodic snapshot:", serr)
			}
		case err := <-serveErr:
			// Serve only returns early on a listener error.
			return fmt.Errorf("serve: %w", err)
		case <-ctx.Done():
			timeout := o.shutdownTimeout
			if timeout == 0 {
				timeout = 15 * time.Second
			}
			shCtx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			// Shutdown stops accepting, waits out in-flight requests,
			// drains the engine, then snapshots via OnDrain.
			err := srv.Shutdown(shCtx)
			<-serveErr
			if cerr := eng.Close(); err == nil {
				err = cerr
			}
			if err != nil && !errors.Is(err, context.Canceled) {
				return fmt.Errorf("shutdown: %w", err)
			}
			es := eng.EngineStats()
			fmt.Fprintf(out, "predictd: drained and stopped (%d streams, %d samples processed)\n",
				es.Streams, es.Processed)
			return nil
		}
	}
}
