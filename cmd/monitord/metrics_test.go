package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// TestMetricsEndpointServesPromText scrapes /metrics late in a chaos run
// (via the panicHook, which fires on every processing slice) and asserts
// the Prometheus exposition carries the daemon's full instrument set:
// per-pipeline forecast-source counters, classifier decisions, health
// transitions forced by the injected spikes, retrain/backoff state, the
// durability counters, and the forecast-latency histogram. It also checks
// the opt-in pprof handler is mounted.
func TestMetricsEndpointServesPromText(t *testing.T) {
	o := baseOptions(vmtrace.VM2, vmtrace.VM3)
	o.duration = 36 * time.Hour
	o.quiet = true
	// The spiked stream thrash-retrains until the breaker opens and the
	// pipeline degrades — that is what populates the health-transition and
	// degraded-forecast families.
	o.threshold = 1.0
	o.faultSpec = "spike:p=0.10,mag=20,add=10,on=VM3/CPU_usedsec"
	o.faultSeed = 99
	o.listen = "127.0.0.1:0"
	o.pprof = true
	o.stateDir = t.TempDir()
	o.snapEvery = 6 * time.Hour

	var addr string
	o.addrReady = func(a string) { addr = a }

	lastHour := int(o.duration/time.Hour) - 1
	var once sync.Once
	var body, ctype string
	var pprofStatus int
	o.panicHook = func(p *pipeline, hour int) {
		if hour < lastHour {
			return
		}
		once.Do(func() {
			resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
			if err != nil {
				t.Errorf("scrape /metrics: %v", err)
				return
			}
			defer resp.Body.Close()
			ctype = resp.Header.Get("Content-Type")
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("read /metrics: %v", err)
				return
			}
			body = string(b)

			pr, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
			if err != nil {
				t.Errorf("get /debug/pprof/: %v", err)
				return
			}
			pr.Body.Close()
			pprofStatus = pr.StatusCode
		})
	}

	if _, err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if body == "" {
		t.Fatal("/metrics was never successfully scraped")
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain exposition", ctype)
	}
	if pprofStatus != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d with -pprof enabled, want 200", pprofStatus)
	}

	for _, want := range []string{
		// Forecasts by fallback-ladder source, labeled per pipeline.
		"# TYPE larpredictor_forecasts_total counter",
		`source="LAR"`,
		`pipeline="VM2/`,
		// Classifier decisions by expert.
		"larpredictor_classifier_decisions_total{",
		// Health-state machine: current rung and transition counts (the
		// spiked VM3 stream must have degraded by now).
		"# TYPE larpredictor_health_state gauge",
		"# TYPE larpredictor_health_transitions_total counter",
		`larpredictor_health_transitions_total{pipeline="VM3/CPU/CPU_usedsec"`,
		// Retrain attempts/failures and backoff state.
		"larpredictor_retrain_attempts_total{",
		"# TYPE larpredictor_retrain_backoff_observations gauge",
		"# TYPE larpredictor_breaker_open gauge",
		// Forecast-latency histogram with cumulative buckets.
		"# TYPE larpredictor_forecast_seconds histogram",
		"larpredictor_forecast_seconds_bucket{",
		`le="+Inf"`,
		// Per-stage tracer families.
		"# TYPE larpredictor_stage_seconds histogram",
		// Durability: snapshots committed during this run, WAL replay
		// registered (zero here — no crash preceded this run).
		"# TYPE larpredictor_snapshots_total counter",
		"# TYPE larpredictor_wal_replayed_records_total counter",
		// Agent and prediction-DB families.
		"larpredictor_monitor_samples_total",
		"larpredictor_preddb_predictions_total",
		"larpredictor_qa_audits_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// At least one snapshot committed before the scrape (snapEvery 6h,
	// scraped in hour 36).
	if strings.Contains(body, "larpredictor_snapshots_total 0\n") {
		t.Error("snapshot counter still zero at end of run")
	}
}

// TestMetricsEndpointWithoutPprof verifies pprof stays unmounted unless
// opted in, while /metrics and the status document share the mux.
func TestMetricsEndpointWithoutPprof(t *testing.T) {
	o := baseOptions(vmtrace.VM2)
	o.duration = 2 * time.Hour
	o.quiet = true
	o.listen = "127.0.0.1:0"
	o.addrReady = func(addr string) {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Errorf("scrape /metrics: %v", err)
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(b), "larpredictor_monitor_samples_total") {
			t.Error("/metrics missing agent families before the run loop")
		}

		pr, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
		if err != nil {
			t.Errorf("get /debug/pprof/: %v", err)
			return
		}
		pr.Body.Close()
		// Without -pprof the path falls through to the status handler,
		// which serves the JSON document — the point is that no profiling
		// surface is exposed, which the Content-Type distinguishes.
		if ct := pr.Header.Get("Content-Type"); strings.Contains(ct, "text/html") {
			t.Errorf("/debug/pprof/ served pprof (Content-Type %q) without -pprof", ct)
		}
	}
	if _, err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
}
