// Command monitord runs the paper's full monitoring-and-prediction pipeline
// (Figure 1) end to end on simulated time: a VMM monitoring agent samples
// every VM each (simulated) minute and consolidates five-minute averages
// into per-VM round-robin databases; a profiler periodically extracts each
// metric's recent series; a streaming LARPredictor per (VM, metric) forecasts
// the next consolidated value; forecasts and observations land in the
// prediction database; and the Prediction Quality Assuror audits recent
// prediction MSE, retraining predictors that drift.
//
//	monitord -duration 24h -vms VM2,VM4
//
// A day of simulated monitoring replays in a few seconds of wall time.
//
// Every (VM, metric) pipeline is supervised independently: pipelines run
// concurrently, a panicking or terminally Failed pipeline is quarantined and
// restarted with fresh state after a cooldown, and one bad stream can never
// take down the rest of the daemon. The -faults flag injects deterministic
// faults (dropouts, NaN bursts, spikes, stuck-at, clock gaps) into selected
// streams for chaos testing; see internal/faults for the spec grammar:
//
//	monitord -duration 48h -faults 'spike:p=0.02,mag=40,on=VM3/*'
//
// With -listen the daemon serves a JSON status document at /, Prometheus
// text-format metrics at /metrics (per-pipeline forecast, health, retrain,
// and latency families plus agent and durability counters), and — only
// with -pprof — the net/http/pprof handlers under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/faults"
	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/preddb"
	"github.com/acis-lab/larpredictor/internal/rrd"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func main() {
	var (
		seed      = flag.Int64("seed", 2007, "workload seed")
		duration  = flag.Duration("duration", 24*time.Hour, "simulated monitoring duration")
		vmsFlag   = flag.String("vms", "VM2,VM3,VM4,VM5", "comma-separated VMs to monitor")
		window    = flag.Int("window", 5, "prediction window size m")
		train     = flag.Int("train", 60, "consolidated samples before initial training")
		audit     = flag.Int("audit", 12, "QA audit window (scored predictions)")
		thresh    = flag.Float64("threshold", 2.0, "QA normalized-MSE retrain threshold")
		quiet     = flag.Bool("quiet", false, "suppress per-hour progress")
		listen    = flag.String("listen", "", "serve the JSON status endpoint (/) and Prometheus /metrics on this address (e.g. :8080) while running")
		pprofOn   = flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ on the status address")
		faultSpec = flag.String("faults", "", "fault-injection spec, e.g. 'spike:p=0.02,mag=40,on=VM3/*;dropout:p=0.05' (see internal/faults)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		cooldown  = flag.Duration("cooldown", 2*time.Hour, "simulated quarantine before restarting a panicked or Failed pipeline")
		stateDir  = flag.String("state", "", "state directory for durable snapshots and WALs; empty runs stateless")
		snapEvery = flag.Duration("snapshot-every", 6*time.Hour, "simulated interval between durable snapshots")
	)
	flag.Parse()

	var vms []vmtrace.VMID
	for _, v := range strings.Split(*vmsFlag, ",") {
		vms = append(vms, vmtrace.VMID(strings.TrimSpace(v)))
	}
	opts := options{
		seed:      *seed,
		duration:  *duration,
		vms:       vms,
		window:    *window,
		trainSize: *train,
		auditWin:  *audit,
		threshold: *thresh,
		quiet:     *quiet,
		listen:    *listen,
		pprof:     *pprofOn,
		faultSpec: *faultSpec,
		faultSeed: *faultSeed,
		cooldown:  *cooldown,
		stateDir:  *stateDir,
		snapEvery: *snapEvery,
	}
	if _, err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}
}

// options collects everything run needs; the zero-value hooks are inert.
type options struct {
	seed      int64
	duration  time.Duration
	vms       []vmtrace.VMID
	window    int
	trainSize int
	auditWin  int
	threshold float64
	quiet     bool
	listen    string
	pprof     bool
	faultSpec string
	faultSeed int64
	cooldown  time.Duration
	stateDir  string
	snapEvery time.Duration

	// crashAfterHours, when positive, aborts the run with errSimulatedCrash
	// after that many simulated hours — no final snapshot, no cleanup. The
	// crash-recovery test uses it as an in-process SIGKILL.
	crashAfterHours int

	// addrReady, when set, receives the status listener's bound address
	// once it is serving (tests use :0 and need the real port).
	addrReady func(addr string)
	// panicHook, when set, runs at the start of every pipeline processing
	// slice. Tests use it to crash a chosen pipeline and exercise the
	// supervisor's recovery path.
	panicHook func(p *pipeline, hour int)
}

// pipeline binds one (vm, metric) series to its streaming predictor and
// prediction-database key. Each pipeline is owned by exactly one goroutine
// per processing slice; the supervisor aggregates after all slices join.
type pipeline struct {
	vm     vmtrace.VMID
	metric vmtrace.Metric
	online *core.Online
	key    preddb.Key
	// lastSeen is the timestamp of the newest consolidated row already fed
	// to the predictor.
	lastSeen time.Time
	// pending records an issued forecast awaiting its observation.
	pending     float64
	pendingFor  time.Time
	hasPending  bool
	predictions int

	// Durability state: the observation WAL (nil when stateless), how many
	// WAL records the warm restart replayed, and the recovery outcome
	// ("recovered", "cold", "quarantined"; empty when stateless).
	wal         *durable.WAL
	walReplayed int
	recovery    string

	// Supervision state (accessed only by the supervisor loop).
	quarantineUntil time.Time
	panics          int
	restarts        int
	lastFault       string
}

// PipeStatus is the per-pipeline document published on the status endpoint
// and in the run summary.
type PipeStatus struct {
	Key               string  `json:"key"`
	Health            string  `json:"health"`
	Predictions       int     `json:"predictions"`
	Retrains          int     `json:"qa_retrains"`
	RetrainFailures   int     `json:"retrain_failures"`
	BreakerOpen       bool    `json:"breaker_open,omitempty"`
	BreakerTrips      int     `json:"breaker_trips,omitempty"`
	DegradedForecasts int     `json:"degraded_forecasts,omitempty"`
	FallbackForecasts int     `json:"fallback_forecasts,omitempty"`
	Panics            int     `json:"panics,omitempty"`
	Restarts          int     `json:"restarts,omitempty"`
	Quarantined       bool    `json:"quarantined,omitempty"`
	LastFault         string  `json:"last_fault,omitempty"`
	Recovery          string  `json:"recovery,omitempty"`
	WALReplayed       int     `json:"wal_replayed,omitempty"`
	ScoredMSE         float64 `json:"scored_mse,omitempty"`
	Scored            int     `json:"scored,omitempty"`
	// Spark is a unicode strip of recent observations for the text report
	// only; it is omitted from the JSON document.
	Spark string `json:"-"`
}

// runSummary is the final report run returns; tests assert on it instead of
// parsing the textual output.
type runSummary struct {
	Samples     int64
	Predictions int
	Retrains    int
	Pipes       []PipeStatus
}

// pipe returns the status for a key, or nil.
func (s *runSummary) pipe(key string) *PipeStatus {
	for i := range s.Pipes {
		if s.Pipes[i].Key == key {
			return &s.Pipes[i]
		}
	}
	return nil
}

// counters aggregates pipeline statistics for the status endpoint. It
// decouples the HTTP handler from the supervisor loop: the loop publishes a
// snapshot once per simulated hour.
type counters struct {
	mu          sync.Mutex
	predictions int
	retrains    int
	pipes       []PipeStatus
}

func (c *counters) snapshot() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	pipes := make([]PipeStatus, len(c.pipes))
	copy(pipes, c.pipes)
	return map[string]any{
		"predictions": c.predictions,
		"qa_retrains": c.retrains,
		"pipelines":   pipes,
	}
}

func (c *counters) publish(predictions, retrains int, pipes []PipeStatus) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.predictions = predictions
	c.retrains = retrains
	c.pipes = pipes
}

// newOnline builds one pipeline's streaming predictor, instrumented on a
// per-pipeline scope of the daemon registry (every metric the predictor
// registers carries a pipeline="VM/device/metric" label). Restarted
// pipelines reuse the same scope, so their counters continue rather than
// reset.
func newOnline(o options, reg *obs.Registry, key preddb.Key) (*core.Online, error) {
	scope := reg.With("pipeline", key.String())
	return core.NewOnline(core.OnlineConfig{
		Predictor:    core.DefaultConfig(o.window),
		TrainSize:    o.trainSize,
		AuditWindow:  o.auditWin,
		MSEThreshold: o.threshold,
	},
		core.WithMetrics(scope),
		core.WithTracer(obs.NewStageTimer(scope)),
	)
}

func run(out io.Writer, o options) (*runSummary, error) {
	if o.duration < 0 {
		return nil, fmt.Errorf("negative duration %v", o.duration)
	}
	traces := vmtrace.StandardTraceSet(o.seed)
	cfg := monitor.DefaultConfig(o.vms...)
	sampler := monitor.TraceSampler(traces)
	injectors, err := faults.ParseSpec(o.faultSpec, o.faultSeed, cfg.Start)
	if err != nil {
		return nil, err
	}
	sampler = faults.Wrap(sampler, injectors...)
	agent, err := monitor.NewAgent(cfg, sampler)
	if err != nil {
		return nil, err
	}
	db := preddb.New()
	if o.cooldown <= 0 {
		o.cooldown = 2 * time.Hour
	}

	// One registry instruments the whole daemon: the agent and prediction
	// DB register on the root, each (vm, metric) pipeline on a labeled
	// scope. /metrics renders all of it in Prometheus text format.
	reg := obs.NewRegistry()
	agent.Instrument(reg)
	db.Instrument(reg)
	restarts := reg.Counter1("larpredictor_pipeline_restarts_total",
		"Pipelines restarted by the supervisor after quarantine.")

	var stats counters
	var srv *http.Server
	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return nil, fmt.Errorf("status listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		if o.pprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		mux.Handle("/", monitor.NewStatusHandler(agent, stats.snapshot))
		srv = &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "monitord: status server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "monitord: status endpoint on %s\n", ln.Addr())
		if o.addrReady != nil {
			o.addrReady(ln.Addr().String())
		}
	}

	var pipes []*pipeline
	for _, vm := range o.vms {
		for _, m := range vmtrace.Metrics() {
			key := preddb.Key{VM: string(vm), Device: deviceOf(m), Metric: string(m)}
			online, err := newOnline(o, reg, key)
			if err != nil {
				return nil, err
			}
			pipes = append(pipes, &pipeline{
				vm: vm, metric: m, online: online,
				key:      key,
				lastSeen: cfg.Start,
			})
		}
	}

	step := cfg.ConsolidationInterval

	// Warm restart: restore databases and predictor state from the state
	// directory, replay WALs, and resume the simulation where the previous
	// process died. Corrupt files are quarantined, not fatal.
	var st *stateStore
	if o.stateDir != "" {
		if o.snapEvery <= 0 {
			o.snapEvery = 6 * time.Hour
		}
		st, err = openState(o.stateDir, fingerprintOptions(o), reg)
		if err != nil {
			return nil, err
		}
		db, err = st.recover(agent, db, pipes, o, step, os.Stderr)
		if err != nil {
			return nil, err
		}
		defer closeWALs(pipes)
	}

	qa, err := preddb.NewAssuror(db, o.auditWin, o.threshold, nil)
	if err != nil {
		return nil, err
	}

	hours := int(o.duration / time.Hour)
	hoursDone := int(agent.Now().Sub(cfg.Start) / time.Hour)
	lastSnap := agent.Now()

	var totalRetrains, totalPredictions int
	for h := hoursDone; h < hours; h++ {
		// Advance simulated time by one hour of 1-minute samples.
		if _, err := agent.Run(time.Hour); err != nil {
			return nil, err
		}
		now := agent.Now()

		// Supervise: restart pipelines whose quarantine expired, then
		// process the live ones concurrently. Each goroutine owns its
		// pipeline exclusively; agent and db are internally locked.
		var wg sync.WaitGroup
		for _, p := range pipes {
			if !p.quarantineUntil.IsZero() {
				if now.Before(p.quarantineUntil) {
					continue
				}
				online, err := newOnline(o, reg, p.key)
				if err != nil {
					return nil, err
				}
				p.online = online
				p.restarts++
				restarts.Inc()
				p.quarantineUntil = time.Time{}
				p.lastFault = ""
				p.hasPending = false
				// Skip the backlog: the poisoned window stays behind us.
				p.lastSeen = now
				continue // warm up from the next slice
			}
			wg.Add(1)
			go func(p *pipeline) {
				defer wg.Done()
				supervise(p, agent, db, now, step, h, o)
			}(p)
		}
		wg.Wait()

		// Quarantine pipelines that panicked or failed this slice.
		for _, p := range pipes {
			if p.lastFault != "" && p.quarantineUntil.IsZero() {
				p.quarantineUntil = now.Add(o.cooldown)
			}
		}

		totalPredictions, totalRetrains = 0, 0
		for _, p := range pipes {
			totalPredictions += p.predictions
			totalRetrains += p.online.Retrains()
		}
		stats.publish(totalPredictions, totalRetrains, pipeStatuses(pipes, db, now))

		fired := qa.AuditAll()
		if !o.quiet {
			fmt.Fprintf(out, "[%s] simulated hour %2d: %d raw samples, %d predictions, %d keys flagged by QA\n",
				now.Format("15:04"), h+1, agent.Samples(), totalPredictions, len(fired))
		}

		if st != nil && now.Sub(lastSnap) >= o.snapEvery {
			if err := st.snapshot(agent, db, pipes, o); err != nil {
				return nil, fmt.Errorf("snapshot: %w", err)
			}
			lastSnap = now
		}
		if o.crashAfterHours > 0 && h+1 >= o.crashAfterHours {
			return nil, errSimulatedCrash
		}
	}

	// A final snapshot makes a completed run resumable with a longer
	// -duration and gives operators the terminal state on disk.
	if st != nil {
		if err := st.snapshot(agent, db, pipes, o); err != nil {
			return nil, fmt.Errorf("final snapshot: %w", err)
		}
	}

	totalPredictions, totalRetrains = 0, 0
	for _, p := range pipes {
		totalPredictions += p.predictions
		totalRetrains += p.online.Retrains()
	}
	summary := &runSummary{
		Samples:     agent.Samples(),
		Predictions: totalPredictions,
		Retrains:    totalRetrains,
		Pipes:       pipeStatuses(pipes, db, agent.Now()),
	}
	report(out, o, summary)

	// Graceful shutdown: the final snapshot above is what late pollers see;
	// Shutdown drains in-flight requests and closes the listener instead of
	// leaking it past the run.
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "monitord: status shutdown:", err)
		}
	}
	return summary, nil
}

// supervise runs one pipeline's processing slice behind panic recovery: a
// panicking pipeline is recorded (and later quarantined) instead of taking
// the daemon down.
func supervise(p *pipeline, agent *monitor.Agent, db *preddb.DB, now time.Time, step time.Duration, hour int, o options) {
	defer func() {
		if r := recover(); r != nil {
			p.panics++
			p.lastFault = fmt.Sprintf("panic: %v", r)
		}
	}()
	if o.panicHook != nil {
		o.panicHook(p, hour)
	}
	process(p, agent, db, now, step)
	if p.online.Health() == core.Failed {
		p.lastFault = "health: Failed"
		if err := p.online.LastError(); err != nil {
			p.lastFault = fmt.Sprintf("health: Failed (%v)", err)
		}
	}
}

// process feeds one pipeline every consolidated row that landed since its
// last slice and records the forecasts it issues.
func process(p *pipeline, agent *monitor.Agent, db *preddb.DB, now time.Time, step time.Duration) {
	s, err := agent.Profile(monitor.Query{
		VM: p.vm, Metric: p.metric,
		Start: p.lastSeen.Add(time.Second), End: now,
	})
	if err != nil {
		return // no data yet (warm-up, or a stream silenced by faults)
	}
	for i := 0; i < s.Len(); i++ {
		ts := s.TimeAt(i)
		if !ts.After(p.lastSeen) {
			continue
		}
		v := s.At(i)
		// Log the row before applying it; on a crash the WAL replays it
		// through the very same feed path.
		if p.wal != nil {
			_ = p.wal.Append(durable.Record{TS: ts.Unix(), Value: v})
		}
		feed(p, db, ts, v, step)
	}
	if p.wal != nil {
		_ = p.wal.Sync()
	}
}

// feed pushes one consolidated row through the pipeline: the observation
// into the prediction DB, then the predictor, then any new forecast back
// into the DB. Live processing and WAL replay share it, so recovery
// reproduces exactly what the crashed run did.
func feed(p *pipeline, db *preddb.DB, ts time.Time, v float64, step time.Duration) {
	db.PutObservation(p.key, ts, v)
	if p.hasPending && ts.Equal(p.pendingFor) {
		// Forecast scored implicitly by the preddb QA.
		p.hasPending = false
	}
	// Step absorbs retrain failures into the pipeline's health state; a
	// Forecast error means not ready, or terminally Failed (the
	// supervisor acts on health, not on this return).
	pred, _, err := p.online.Step(v)
	p.lastSeen = ts
	if err != nil {
		return
	}
	p.pending = pred.Value
	p.pendingFor = ts.Add(step)
	p.hasPending = true
	db.PutPrediction(p.key, p.pendingFor, pred.Value, pred.SelectedName)
	p.predictions++
}

// pipeStatuses snapshots every pipeline for the status endpoint and the
// final summary. Called from the supervisor loop only, after all processing
// goroutines have joined.
func pipeStatuses(pipes []*pipeline, db *preddb.DB, now time.Time) []PipeStatus {
	out := make([]PipeStatus, 0, len(pipes))
	for _, p := range pipes {
		hs := p.online.HealthStats()
		st := PipeStatus{
			Key:               p.key.String(),
			Health:            hs.State.String(),
			Predictions:       p.predictions,
			Retrains:          hs.Retrains,
			RetrainFailures:   hs.RetrainFailures,
			BreakerOpen:       hs.BreakerOpen,
			BreakerTrips:      hs.BreakerTrips,
			DegradedForecasts: hs.DegradedForecasts,
			FallbackForecasts: hs.FallbackForecasts,
			Panics:            p.panics,
			Restarts:          p.restarts,
			Quarantined:       !p.quarantineUntil.IsZero() && now.Before(p.quarantineUntil),
			LastFault:         p.lastFault,
			Recovery:          p.recovery,
			WALReplayed:       p.walReplayed,
		}
		if mse, n, err := db.AuditMSE(p.key, 1<<30); err == nil && n > 0 {
			st.ScoredMSE, st.Scored = mse, n
			st.Spark = observationSparkline(db, p.key, 32)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// report renders the final textual summary.
func report(out io.Writer, o options, s *runSummary) {
	fmt.Fprintf(out, "\nmonitord summary after %s simulated (%d VMs, %d pipelines)\n",
		o.duration, len(o.vms), len(s.Pipes))
	fmt.Fprintf(out, "  raw samples collected: %d\n", s.Samples)
	fmt.Fprintf(out, "  predictions issued:    %d\n", s.Predictions)
	degraded := 0
	for _, p := range s.Pipes {
		if p.Health != core.Healthy.String() || p.BreakerTrips > 0 || p.Restarts > 0 {
			degraded++
		}
	}
	if degraded > 0 {
		fmt.Fprintf(out, "  pipelines with incidents: %d\n", degraded)
	}
	var recovered, quarantined, replayed int
	for _, p := range s.Pipes {
		switch p.Recovery {
		case recoveryRecovered:
			recovered++
		case recoveryQuarantined:
			quarantined++
		}
		replayed += p.WALReplayed
	}
	if recovered > 0 || quarantined > 0 {
		fmt.Fprintf(out, "  warm restart: %d recovered, %d quarantined, %d WAL records replayed\n",
			recovered, quarantined, replayed)
	}
	// Troubled pipelines must never scroll out of view: list them ahead of
	// the healthy ones before applying the line cap.
	order := make([]*PipeStatus, 0, len(s.Pipes))
	for i := range s.Pipes {
		if s.Pipes[i].Health != core.Healthy.String() || s.Pipes[i].BreakerTrips > 0 {
			order = append(order, &s.Pipes[i])
		}
	}
	for i := range s.Pipes {
		if s.Pipes[i].Health == core.Healthy.String() && s.Pipes[i].BreakerTrips == 0 {
			order = append(order, &s.Pipes[i])
		}
	}
	reported := 0
	for _, p := range order {
		if p.Scored == 0 {
			continue
		}
		if reported < 12 {
			fmt.Fprintf(out, "  %-28s %-8s %4d scored predictions, raw MSE %-10.4g %s\n",
				p.Key, p.Health, p.Scored, p.ScoredMSE, p.Spark)
		}
		reported++
	}
	if reported > 12 {
		fmt.Fprintf(out, "  ... and %d more pipelines\n", reported-12)
	}
	for _, p := range s.Pipes {
		if p.Panics > 0 || p.Restarts > 0 || p.Health == core.Failed.String() {
			fmt.Fprintf(out, "  supervisor: %-28s %s panics=%d restarts=%d %s\n",
				p.Key, p.Health, p.Panics, p.Restarts, p.LastFault)
		}
	}
}

// observationSparkline renders the last n observed values of a key as a
// compact unicode strip for ad-hoc inspection.
func observationSparkline(db *preddb.DB, key preddb.Key, n int) string {
	recs := db.Range(key, time.Unix(0, 0), time.Unix(1<<40, 0))
	var rows []rrd.Row
	for _, r := range recs {
		if r.HasObserved {
			rows = append(rows, rrd.Row{Values: []float64{r.Observed}})
		}
	}
	if len(rows) > n {
		rows = rows[len(rows)-n:]
	}
	return rrd.Sparkline(rows, 0)
}

// deviceOf extracts the paper's deviceID component from a metric name
// ("NIC1_received" → "NIC1"; CPU and memory metrics map to their subsystem).
func deviceOf(m vmtrace.Metric) string {
	s := string(m)
	if i := strings.IndexByte(s, '_'); i > 0 {
		return s[:i]
	}
	return s
}
