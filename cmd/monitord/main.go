// Command monitord runs the paper's full monitoring-and-prediction pipeline
// (Figure 1) end to end on simulated time: a VMM monitoring agent samples
// every VM each (simulated) minute and consolidates five-minute averages
// into per-VM round-robin databases; a profiler periodically extracts each
// metric's recent series; a streaming LARPredictor per (VM, metric) forecasts
// the next consolidated value; forecasts and observations land in the
// prediction database; and the Prediction Quality Assuror audits recent
// prediction MSE, retraining predictors that drift.
//
//	monitord -duration 24h -vms VM2,VM4
//
// A day of simulated monitoring replays in a few seconds of wall time.
//
// Every (VM, metric) pipeline is supervised independently: pipelines run
// concurrently, a panicking or terminally Failed pipeline is quarantined and
// restarted with fresh state after a cooldown, and one bad stream can never
// take down the rest of the daemon. The -faults flag injects deterministic
// faults (dropouts, NaN bursts, spikes, stuck-at, clock gaps) into selected
// streams for chaos testing; see internal/faults for the spec grammar:
//
//	monitord -duration 48h -faults 'spike:p=0.02,mag=40,on=VM3/*'
//
// With -listen the daemon serves a JSON status document at /, Prometheus
// text-format metrics at /metrics (per-pipeline forecast, health, retrain,
// and latency families plus agent and durability counters), and — only
// with -pprof — the net/http/pprof handlers under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/faults"
	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/preddb"
	"github.com/acis-lab/larpredictor/internal/rrd"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func main() {
	var (
		seed      = flag.Int64("seed", 2007, "workload seed")
		duration  = flag.Duration("duration", 24*time.Hour, "simulated monitoring duration")
		vmsFlag   = flag.String("vms", "VM2,VM3,VM4,VM5", "comma-separated VMs to monitor")
		window    = flag.Int("window", 5, "prediction window size m")
		train     = flag.Int("train", 60, "consolidated samples before initial training")
		audit     = flag.Int("audit", 12, "QA audit window (scored predictions)")
		thresh    = flag.Float64("threshold", 2.0, "QA normalized-MSE retrain threshold")
		quiet     = flag.Bool("quiet", false, "suppress per-hour progress")
		listen    = flag.String("listen", "", "serve the JSON status endpoint (/) and Prometheus /metrics on this address (e.g. :8080) while running")
		pprofOn   = flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ on the status address")
		faultSpec = flag.String("faults", "", "fault-injection spec, e.g. 'spike:p=0.02,mag=40,on=VM3/*;dropout:p=0.05' (see internal/faults)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		cooldown  = flag.Duration("cooldown", 2*time.Hour, "simulated quarantine before restarting a panicked or Failed pipeline")
		stateDir  = flag.String("state", "", "state directory for durable snapshots and WALs; empty runs stateless")
		snapEvery = flag.Duration("snapshot-every", 6*time.Hour, "simulated interval between durable snapshots")
		shards    = flag.Int("shards", 0, "prediction-engine shards (0 = one per CPU)")
		backpress = flag.String("backpressure", "block", "engine ingest policy when a shard queue fills: block, drop-oldest, or reject")
	)
	flag.Parse()

	var vms []vmtrace.VMID
	for _, v := range strings.Split(*vmsFlag, ",") {
		vms = append(vms, vmtrace.VMID(strings.TrimSpace(v)))
	}
	opts := options{
		seed:         *seed,
		duration:     *duration,
		vms:          vms,
		window:       *window,
		trainSize:    *train,
		auditWin:     *audit,
		threshold:    *thresh,
		quiet:        *quiet,
		listen:       *listen,
		pprof:        *pprofOn,
		faultSpec:    *faultSpec,
		faultSeed:    *faultSeed,
		cooldown:     *cooldown,
		stateDir:     *stateDir,
		snapEvery:    *snapEvery,
		shards:       *shards,
		backpressure: *backpress,
	}
	if _, err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}
}

// options collects everything run needs; the zero-value hooks are inert.
type options struct {
	seed      int64
	duration  time.Duration
	vms       []vmtrace.VMID
	window    int
	trainSize int
	auditWin  int
	threshold float64
	quiet     bool
	listen    string
	pprof     bool
	faultSpec string
	faultSeed int64
	cooldown  time.Duration
	stateDir  string
	snapEvery time.Duration

	// shards is the prediction-engine shard count (0 = one per CPU);
	// backpressure is the engine ingest policy ("" or "block", "drop-oldest",
	// "reject").
	shards       int
	backpressure string

	// crashAfterHours, when positive, aborts the run with errSimulatedCrash
	// after that many simulated hours — no final snapshot, no cleanup. The
	// crash-recovery test uses it as an in-process SIGKILL.
	crashAfterHours int

	// addrReady, when set, receives the status listener's bound address
	// once it is serving (tests use :0 and need the real port).
	addrReady func(addr string)
	// panicHook, when set, runs at the start of every pipeline processing
	// slice, behind the supervisor's panic recovery. Tests use it to crash
	// a chosen pipeline and exercise the recovery path.
	panicHook func(p *pipeline, hour int)
}

// pipeline binds one (vm, metric) series to its streaming predictor and
// prediction-database key. The sharded engine owns the hot path: all rows
// for one pipeline hash to one shard, whose worker updates the feed
// bookkeeping below; the supervisor loop reads it only behind the engine's
// Drain barrier.
type pipeline struct {
	vm     vmtrace.VMID
	metric vmtrace.Metric
	online *core.Online
	key    preddb.Key
	// id is key.String(), cached as the engine stream ID.
	id string
	// lastSeen is the timestamp of the newest consolidated row already fed
	// to the predictor.
	lastSeen time.Time
	// pending records an issued forecast awaiting its observation.
	pending     float64
	pendingFor  time.Time
	hasPending  bool
	predictions int

	// Durability state: the observation WAL (nil when stateless), how many
	// WAL records the warm restart replayed, the records awaiting replay
	// through the engine, and the recovery outcome ("recovered", "cold",
	// "quarantined"; empty when stateless).
	wal         *durable.WAL
	walReplayed int
	replay      []durable.Record
	recovery    string

	// Supervision state (accessed only by the supervisor loop).
	// enginePanics mirrors the engine's cumulative panic count for this
	// stream so the fault-mapping pass can accumulate deltas into panics
	// without clobbering slice-level hook panics.
	quarantineUntil time.Time
	panics          int
	enginePanics    int
	restarts        int
	lastFault       string
}

// PipeStatus is the per-pipeline document published on the status endpoint
// and in the run summary.
type PipeStatus struct {
	Key               string  `json:"key"`
	Health            string  `json:"health"`
	Predictions       int     `json:"predictions"`
	Retrains          int     `json:"qa_retrains"`
	RetrainFailures   int     `json:"retrain_failures"`
	BreakerOpen       bool    `json:"breaker_open,omitempty"`
	BreakerTrips      int     `json:"breaker_trips,omitempty"`
	DegradedForecasts int     `json:"degraded_forecasts,omitempty"`
	FallbackForecasts int     `json:"fallback_forecasts,omitempty"`
	Panics            int     `json:"panics,omitempty"`
	Restarts          int     `json:"restarts,omitempty"`
	Quarantined       bool    `json:"quarantined,omitempty"`
	LastFault         string  `json:"last_fault,omitempty"`
	Recovery          string  `json:"recovery,omitempty"`
	WALReplayed       int     `json:"wal_replayed,omitempty"`
	ScoredMSE         float64 `json:"scored_mse,omitempty"`
	Scored            int     `json:"scored,omitempty"`
	// Spark is a unicode strip of recent observations for the text report
	// only; it is omitted from the JSON document.
	Spark string `json:"-"`
}

// runSummary is the final report run returns; tests assert on it instead of
// parsing the textual output.
type runSummary struct {
	Samples     int64
	Predictions int
	Retrains    int
	Pipes       []PipeStatus
}

// pipe returns the status for a key, or nil.
func (s *runSummary) pipe(key string) *PipeStatus {
	for i := range s.Pipes {
		if s.Pipes[i].Key == key {
			return &s.Pipes[i]
		}
	}
	return nil
}

// counters aggregates pipeline statistics for the status endpoint. It
// decouples the HTTP handler from the supervisor loop: the loop publishes a
// snapshot once per simulated hour.
type counters struct {
	mu          sync.Mutex
	predictions int
	retrains    int
	pipes       []PipeStatus
}

func (c *counters) snapshot() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	pipes := make([]PipeStatus, len(c.pipes))
	copy(pipes, c.pipes)
	return map[string]any{
		"predictions": c.predictions,
		"qa_retrains": c.retrains,
		"pipelines":   pipes,
	}
}

func (c *counters) publish(predictions, retrains int, pipes []PipeStatus) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.predictions = predictions
	c.retrains = retrains
	c.pipes = pipes
}

// newOnline builds one pipeline's streaming predictor, instrumented on a
// per-pipeline scope of the daemon registry (every metric the predictor
// registers carries a pipeline="VM/device/metric" label). Restarted
// pipelines reuse the same scope, so their counters continue rather than
// reset.
func newOnline(o options, reg *obs.Registry, key preddb.Key) (*core.Online, error) {
	scope := reg.With("pipeline", key.String())
	return core.NewOnline(core.OnlineConfig{
		Predictor:    core.DefaultConfig(o.window),
		TrainSize:    o.trainSize,
		AuditWindow:  o.auditWin,
		MSEThreshold: o.threshold,
	},
		core.WithMetrics(scope),
		core.WithTracer(obs.NewStageTimer(scope)),
	)
}

func run(out io.Writer, o options) (*runSummary, error) {
	if o.duration < 0 {
		return nil, fmt.Errorf("negative duration %v", o.duration)
	}
	traces := vmtrace.StandardTraceSet(o.seed)
	cfg := monitor.DefaultConfig(o.vms...)
	sampler := monitor.TraceSampler(traces)
	injectors, err := faults.ParseSpec(o.faultSpec, o.faultSeed, cfg.Start)
	if err != nil {
		return nil, err
	}
	sampler = faults.Wrap(sampler, injectors...)
	agent, err := monitor.NewAgent(cfg, sampler)
	if err != nil {
		return nil, err
	}
	db := preddb.New()
	if o.cooldown <= 0 {
		o.cooldown = 2 * time.Hour
	}

	// One registry instruments the whole daemon: the agent and prediction
	// DB register on the root, each (vm, metric) pipeline on a labeled
	// scope. /metrics renders all of it in Prometheus text format.
	reg := obs.NewRegistry()
	agent.Instrument(reg)
	db.Instrument(reg)
	restarts := reg.Counter1("larpredictor_pipeline_restarts_total",
		"Pipelines restarted by the supervisor after quarantine.")

	var stats counters
	var srv *http.Server
	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return nil, fmt.Errorf("status listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		if o.pprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		mux.Handle("/", monitor.NewStatusHandler(agent, stats.snapshot))
		srv = &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "monitord: status server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "monitord: status endpoint on %s\n", ln.Addr())
		if o.addrReady != nil {
			o.addrReady(ln.Addr().String())
		}
	}

	var pipes []*pipeline
	for _, vm := range o.vms {
		for _, m := range vmtrace.Metrics() {
			key := preddb.Key{VM: string(vm), Device: deviceOf(m), Metric: string(m)}
			online, err := newOnline(o, reg, key)
			if err != nil {
				return nil, err
			}
			pipes = append(pipes, &pipeline{
				vm: vm, metric: m, online: online,
				key:      key,
				id:       key.String(),
				lastSeen: cfg.Start,
			})
		}
	}
	byKey := make(map[string]*pipeline, len(pipes))
	for _, p := range pipes {
		byKey[p.id] = p
	}

	step := cfg.ConsolidationInterval

	// Warm restart: restore databases and predictor state from the state
	// directory, replay WALs, and resume the simulation where the previous
	// process died. Corrupt files are quarantined, not fatal.
	var st *stateStore
	if o.stateDir != "" {
		if o.snapEvery <= 0 {
			o.snapEvery = 6 * time.Hour
		}
		st, err = openState(o.stateDir, fingerprintOptions(o), reg)
		if err != nil {
			return nil, err
		}
		db, err = st.recover(agent, db, pipes, o, os.Stderr)
		if err != nil {
			return nil, err
		}
		defer closeWALs(pipes)
	}

	qa, err := preddb.NewAssuror(db, o.auditWin, o.threshold, nil)
	if err != nil {
		return nil, err
	}

	// The sharded engine drives every pipeline's hot path: rows enqueue to
	// the owning shard, whose worker steps the predictor and runs the feed
	// bookkeeping below.
	policy := engine.Block
	if o.backpressure != "" {
		if policy, err = engine.ParsePolicy(o.backpressure); err != nil {
			return nil, err
		}
	}
	eng, err := engine.New(engine.Config{
		Shards:  o.shards,
		Policy:  policy,
		Metrics: reg,
		OnResult: func(r engine.Result) {
			// The per-row feed path, run on the owning shard's worker: the
			// observation into the prediction DB, then any new forecast back
			// into the DB. Live rows and WAL replay share it, so recovery
			// reproduces exactly what the crashed run did.
			p := byKey[r.ID]
			ts := time.Unix(r.TS, 0).UTC()
			db.PutObservation(p.key, ts, r.Value)
			if p.hasPending && ts.Equal(p.pendingFor) {
				// Forecast scored implicitly by the preddb QA.
				p.hasPending = false
			}
			if errors.Is(r.Err, engine.ErrPoisoned) {
				// The step panicked mid-row: like the old in-slice panic, the
				// row is logged but never marked seen.
				return
			}
			p.lastSeen = ts
			if r.Err != nil {
				return // not ready, or terminally Failed (supervisor acts on health)
			}
			p.pending = r.Pred.Value
			p.pendingFor = ts.Add(step)
			p.hasPending = true
			db.PutPrediction(p.key, p.pendingFor, r.Pred.Value, r.Pred.SelectedName)
			p.predictions++
		},
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for _, p := range pipes {
		if err := eng.Register(p.id, p.online); err != nil {
			return nil, err
		}
	}

	// Warm restart, phase 2: replay the WAL records the snapshot missed
	// through the same engine path live rows take.
	for _, p := range pipes {
		for _, rec := range p.replay {
			if err := eng.IngestSample(engine.Sample{ID: p.id, TS: rec.TS, Value: rec.Value}); err != nil {
				return nil, fmt.Errorf("replay %s: %w", p.id, err)
			}
		}
		p.replay = nil
	}
	eng.Drain()

	hours := int(o.duration / time.Hour)
	hoursDone := int(agent.Now().Sub(cfg.Start) / time.Hour)
	lastSnap := agent.Now()

	var totalRetrains, totalPredictions int
	for h := hoursDone; h < hours; h++ {
		// Advance simulated time by one hour of 1-minute samples.
		if _, err := agent.Run(time.Hour); err != nil {
			return nil, err
		}
		now := agent.Now()

		// Supervise: restart pipelines whose quarantine expired, then
		// enqueue the live ones' new rows onto the engine. Shard workers
		// step the predictors concurrently; Drain is the barrier behind
		// which the loop reads the pipelines back.
		for _, p := range pipes {
			if !p.quarantineUntil.IsZero() {
				if now.Before(p.quarantineUntil) {
					continue
				}
				online, err := newOnline(o, reg, p.key)
				if err != nil {
					return nil, err
				}
				p.online = online
				if err := eng.Replace(p.id, online); err != nil {
					return nil, err
				}
				p.restarts++
				restarts.Inc()
				p.quarantineUntil = time.Time{}
				p.lastFault = ""
				p.hasPending = false
				// Skip the backlog: the poisoned window stays behind us.
				p.lastSeen = now
				continue // warm up from the next slice
			}
			if fault := runHook(o.panicHook, p, h); fault != "" {
				// A hook panic poisons the whole slice, like the old
				// in-process supervisor: the hour's rows are skipped and the
				// pipeline is flagged for quarantine below.
				p.panics++
				p.lastFault = fault
				continue
			}
			if err := enqueueSlice(eng, p, agent, now); err != nil {
				return nil, err
			}
		}
		eng.Drain()

		// Map engine supervision state back onto the pipelines, then
		// quarantine the ones that panicked or failed this slice.
		for _, p := range pipes {
			es, ok := eng.Stats(p.id)
			if !ok {
				continue
			}
			if es.Panics > p.enginePanics {
				p.panics += es.Panics - p.enginePanics
				p.enginePanics = es.Panics
			}
			switch es.Fault {
			case "":
			case engine.FaultFailed:
				p.lastFault = engine.FaultFailed
				if err := p.online.LastError(); err != nil {
					p.lastFault = fmt.Sprintf("%s (%v)", engine.FaultFailed, err)
				}
			default:
				p.lastFault = es.Fault
			}
		}
		for _, p := range pipes {
			if p.lastFault != "" && p.quarantineUntil.IsZero() {
				p.quarantineUntil = now.Add(o.cooldown)
			}
		}

		totalPredictions, totalRetrains = 0, 0
		for _, p := range pipes {
			totalPredictions += p.predictions
			totalRetrains += p.online.Retrains()
		}
		stats.publish(totalPredictions, totalRetrains, pipeStatuses(pipes, db, now))

		fired := qa.AuditAll()
		if !o.quiet {
			fmt.Fprintf(out, "[%s] simulated hour %2d: %d raw samples, %d predictions, %d keys flagged by QA\n",
				now.Format("15:04"), h+1, agent.Samples(), totalPredictions, len(fired))
		}

		if st != nil && now.Sub(lastSnap) >= o.snapEvery {
			if err := st.snapshot(agent, db, pipes, o); err != nil {
				return nil, fmt.Errorf("snapshot: %w", err)
			}
			lastSnap = now
		}
		if o.crashAfterHours > 0 && h+1 >= o.crashAfterHours {
			return nil, errSimulatedCrash
		}
	}

	// A final snapshot makes a completed run resumable with a longer
	// -duration and gives operators the terminal state on disk.
	if st != nil {
		if err := st.snapshot(agent, db, pipes, o); err != nil {
			return nil, fmt.Errorf("final snapshot: %w", err)
		}
	}

	totalPredictions, totalRetrains = 0, 0
	for _, p := range pipes {
		totalPredictions += p.predictions
		totalRetrains += p.online.Retrains()
	}
	summary := &runSummary{
		Samples:     agent.Samples(),
		Predictions: totalPredictions,
		Retrains:    totalRetrains,
		Pipes:       pipeStatuses(pipes, db, agent.Now()),
	}
	report(out, o, summary)

	// Graceful shutdown: the final snapshot above is what late pollers see;
	// Shutdown drains in-flight requests and closes the listener instead of
	// leaking it past the run.
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "monitord: status shutdown:", err)
		}
	}
	return summary, nil
}

// runHook invokes the test-only panic hook for one pipeline slice under its
// own recovery envelope, returning the fault string when the hook panicked
// and "" otherwise (including when no hook is set).
func runHook(hook func(*pipeline, int), p *pipeline, hour int) (fault string) {
	if hook == nil {
		return ""
	}
	defer func() {
		if r := recover(); r != nil {
			fault = fmt.Sprintf("panic: %v", r)
		}
	}()
	hook(p, hour)
	return ""
}

// enqueueSlice queries one pipeline's consolidated rows that landed since
// its last slice and enqueues them onto the engine, logging each row to the
// WAL before it is applied so a crash replays it through the very same
// path. The pipeline's feed bookkeeping runs in the engine's OnResult; the
// caller must Drain before reading it back.
func enqueueSlice(eng *engine.Engine, p *pipeline, agent *monitor.Agent, now time.Time) error {
	// Snapshot lastSeen before the first enqueue: the shard worker advances
	// it as rows process, and rows arrive in time order anyway.
	since := p.lastSeen
	s, err := agent.Profile(monitor.Query{
		VM: p.vm, Metric: p.metric,
		Start: since.Add(time.Second), End: now,
	})
	if err != nil {
		return nil // no data yet (warm-up, or a stream silenced by faults)
	}
	for i := 0; i < s.Len(); i++ {
		ts := s.TimeAt(i)
		if !ts.After(since) {
			continue
		}
		v := s.At(i)
		if p.wal != nil {
			_ = p.wal.Append(durable.Record{TS: ts.Unix(), Value: v})
		}
		if err := eng.IngestSample(engine.Sample{ID: p.id, TS: ts.Unix(), Value: v}); err != nil {
			return fmt.Errorf("ingest %s: %w", p.id, err)
		}
	}
	if p.wal != nil {
		_ = p.wal.Sync()
	}
	return nil
}

// pipeStatuses snapshots every pipeline for the status endpoint and the
// final summary. Called from the supervisor loop only, after all processing
// goroutines have joined.
func pipeStatuses(pipes []*pipeline, db *preddb.DB, now time.Time) []PipeStatus {
	out := make([]PipeStatus, 0, len(pipes))
	for _, p := range pipes {
		hs := p.online.HealthStats()
		st := PipeStatus{
			Key:               p.key.String(),
			Health:            hs.State.String(),
			Predictions:       p.predictions,
			Retrains:          hs.Retrains,
			RetrainFailures:   hs.RetrainFailures,
			BreakerOpen:       hs.BreakerOpen,
			BreakerTrips:      hs.BreakerTrips,
			DegradedForecasts: hs.DegradedForecasts,
			FallbackForecasts: hs.FallbackForecasts,
			Panics:            p.panics,
			Restarts:          p.restarts,
			Quarantined:       !p.quarantineUntil.IsZero() && now.Before(p.quarantineUntil),
			LastFault:         p.lastFault,
			Recovery:          p.recovery,
			WALReplayed:       p.walReplayed,
		}
		if mse, n, err := db.AuditMSE(p.key, 1<<30); err == nil && n > 0 {
			st.ScoredMSE, st.Scored = mse, n
			st.Spark = observationSparkline(db, p.key, 32)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// report renders the final textual summary.
func report(out io.Writer, o options, s *runSummary) {
	fmt.Fprintf(out, "\nmonitord summary after %s simulated (%d VMs, %d pipelines)\n",
		o.duration, len(o.vms), len(s.Pipes))
	fmt.Fprintf(out, "  raw samples collected: %d\n", s.Samples)
	fmt.Fprintf(out, "  predictions issued:    %d\n", s.Predictions)
	degraded := 0
	for _, p := range s.Pipes {
		if p.Health != core.Healthy.String() || p.BreakerTrips > 0 || p.Restarts > 0 {
			degraded++
		}
	}
	if degraded > 0 {
		fmt.Fprintf(out, "  pipelines with incidents: %d\n", degraded)
	}
	var recovered, quarantined, replayed int
	for _, p := range s.Pipes {
		switch p.Recovery {
		case recoveryRecovered:
			recovered++
		case recoveryQuarantined:
			quarantined++
		}
		replayed += p.WALReplayed
	}
	if recovered > 0 || quarantined > 0 {
		fmt.Fprintf(out, "  warm restart: %d recovered, %d quarantined, %d WAL records replayed\n",
			recovered, quarantined, replayed)
	}
	// Troubled pipelines must never scroll out of view: list them ahead of
	// the healthy ones before applying the line cap.
	order := make([]*PipeStatus, 0, len(s.Pipes))
	for i := range s.Pipes {
		if s.Pipes[i].Health != core.Healthy.String() || s.Pipes[i].BreakerTrips > 0 {
			order = append(order, &s.Pipes[i])
		}
	}
	for i := range s.Pipes {
		if s.Pipes[i].Health == core.Healthy.String() && s.Pipes[i].BreakerTrips == 0 {
			order = append(order, &s.Pipes[i])
		}
	}
	reported := 0
	for _, p := range order {
		if p.Scored == 0 {
			continue
		}
		if reported < 12 {
			fmt.Fprintf(out, "  %-28s %-8s %4d scored predictions, raw MSE %-10.4g %s\n",
				p.Key, p.Health, p.Scored, p.ScoredMSE, p.Spark)
		}
		reported++
	}
	if reported > 12 {
		fmt.Fprintf(out, "  ... and %d more pipelines\n", reported-12)
	}
	for _, p := range s.Pipes {
		if p.Panics > 0 || p.Restarts > 0 || p.Health == core.Failed.String() {
			fmt.Fprintf(out, "  supervisor: %-28s %s panics=%d restarts=%d %s\n",
				p.Key, p.Health, p.Panics, p.Restarts, p.LastFault)
		}
	}
}

// observationSparkline renders the last n observed values of a key as a
// compact unicode strip for ad-hoc inspection.
func observationSparkline(db *preddb.DB, key preddb.Key, n int) string {
	recs := db.Range(key, time.Unix(0, 0), time.Unix(1<<40, 0))
	var rows []rrd.Row
	for _, r := range recs {
		if r.HasObserved {
			rows = append(rows, rrd.Row{Values: []float64{r.Observed}})
		}
	}
	if len(rows) > n {
		rows = rows[len(rows)-n:]
	}
	return rrd.Sparkline(rows, 0)
}

// deviceOf extracts the paper's deviceID component from a metric name
// ("NIC1_received" → "NIC1"; CPU and memory metrics map to their subsystem).
func deviceOf(m vmtrace.Metric) string {
	s := string(m)
	if i := strings.IndexByte(s, '_'); i > 0 {
		return s[:i]
	}
	return s
}
