// Command monitord runs the paper's full monitoring-and-prediction pipeline
// (Figure 1) end to end on simulated time: a VMM monitoring agent samples
// every VM each (simulated) minute and consolidates five-minute averages
// into per-VM round-robin databases; a profiler periodically extracts each
// metric's recent series; a streaming LARPredictor per (VM, metric) forecasts
// the next consolidated value; forecasts and observations land in the
// prediction database; and the Prediction Quality Assuror audits recent
// prediction MSE, retraining predictors that drift.
//
//	monitord -duration 24h -vms VM2,VM4
//
// A day of simulated monitoring replays in a few seconds of wall time.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/preddb"
	"github.com/acis-lab/larpredictor/internal/rrd"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2007, "workload seed")
		duration = flag.Duration("duration", 24*time.Hour, "simulated monitoring duration")
		vmsFlag  = flag.String("vms", "VM2,VM3,VM4,VM5", "comma-separated VMs to monitor")
		window   = flag.Int("window", 5, "prediction window size m")
		train    = flag.Int("train", 60, "consolidated samples before initial training")
		audit    = flag.Int("audit", 12, "QA audit window (scored predictions)")
		thresh   = flag.Float64("threshold", 2.0, "QA normalized-MSE retrain threshold")
		quiet    = flag.Bool("quiet", false, "suppress per-hour progress")
		listen   = flag.String("listen", "", "serve a JSON status endpoint on this address (e.g. :8080) while running")
	)
	flag.Parse()

	var vms []vmtrace.VMID
	for _, v := range strings.Split(*vmsFlag, ",") {
		vms = append(vms, vmtrace.VMID(strings.TrimSpace(v)))
	}
	if err := run(os.Stdout, *seed, *duration, vms, *window, *train, *audit, *thresh, *quiet, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}
}

// pipeline binds one (vm, metric) series to its streaming predictor and
// prediction-database key.
type pipeline struct {
	vm     vmtrace.VMID
	metric vmtrace.Metric
	online *core.Online
	key    preddb.Key
	// lastSeen is the timestamp of the newest consolidated row already fed
	// to the predictor.
	lastSeen time.Time
	// pending records an issued forecast awaiting its observation.
	pending     float64
	pendingFor  time.Time
	hasPending  bool
	predictions int
}

// counters aggregates pipeline statistics for the status endpoint.
type counters struct {
	mu          sync.Mutex
	predictions int
	retrains    int
}

func (c *counters) snapshot() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return map[string]int{
		"predictions": c.predictions,
		"qa_retrains": c.retrains,
	}
}

func run(out io.Writer, seed int64, duration time.Duration, vms []vmtrace.VMID, window, trainSize, auditWin int, threshold float64, quiet bool, listen string) error {
	traces := vmtrace.StandardTraceSet(seed)
	cfg := monitor.DefaultConfig(vms...)
	agent, err := monitor.NewAgent(cfg, monitor.TraceSampler(traces))
	if err != nil {
		return err
	}
	db := preddb.New()

	var stats counters
	if listen != "" {
		srv := &http.Server{
			Addr:    listen,
			Handler: monitor.NewStatusHandler(agent, stats.snapshot),
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "monitord: status server:", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "monitord: status endpoint on %s\n", listen)
	}

	var pipes []*pipeline
	for _, vm := range vms {
		for _, m := range vmtrace.Metrics() {
			online, err := core.NewOnline(core.OnlineConfig{
				Predictor:    core.DefaultConfig(window),
				TrainSize:    trainSize,
				AuditWindow:  auditWin,
				MSEThreshold: threshold,
			})
			if err != nil {
				return err
			}
			pipes = append(pipes, &pipeline{
				vm: vm, metric: m, online: online,
				key:      preddb.Key{VM: string(vm), Device: deviceOf(m), Metric: string(m)},
				lastSeen: cfg.Start,
			})
		}
	}

	qa, err := preddb.NewAssuror(db, auditWin, threshold, nil)
	if err != nil {
		return err
	}

	var totalRetrains, totalPredictions int
	hours := int(duration / time.Hour)
	step := cfg.ConsolidationInterval

	for h := 0; h < hours; h++ {
		// Advance simulated time by one hour of 1-minute samples.
		if err := agent.Run(time.Hour); err != nil {
			return err
		}
		now := agent.Now()

		for _, p := range pipes {
			// Profile any newly consolidated rows for this pipe.
			s, err := agent.Profile(monitor.Query{
				VM: p.vm, Metric: p.metric,
				Start: p.lastSeen.Add(time.Second), End: now,
			})
			if err != nil {
				continue // no data yet (warm-up)
			}
			for i := 0; i < s.Len(); i++ {
				ts := s.TimeAt(i)
				if !ts.After(p.lastSeen) {
					continue
				}
				v := s.At(i)
				db.PutObservation(p.key, ts, v)
				if p.hasPending && ts.Equal(p.pendingFor) {
					// Forecast scored implicitly by the preddb QA.
					p.hasPending = false
				}
				if _, err := p.online.Observe(v); err != nil {
					return fmt.Errorf("%s/%s: %w", p.vm, p.metric, err)
				}
				p.lastSeen = ts

				if p.online.Trained() {
					pred, err := p.online.Forecast()
					if err != nil {
						continue
					}
					p.pending = pred.Value
					p.pendingFor = ts.Add(step)
					p.hasPending = true
					db.PutPrediction(p.key, p.pendingFor, pred.Value, pred.SelectedName)
					p.predictions++
					totalPredictions++
				}
			}
			totalRetrains += p.online.Retrains()
		}
		stats.mu.Lock()
		stats.predictions = totalPredictions
		stats.retrains = totalRetrains
		stats.mu.Unlock()

		fired := qa.AuditAll()
		if !quiet {
			fmt.Fprintf(out, "[%s] simulated hour %2d: %d raw samples, %d predictions, %d keys flagged by QA\n",
				now.Format("15:04"), h+1, agent.Samples(), totalPredictions, len(fired))
		}
	}

	// Final report: per-pipe audit MSE.
	fmt.Fprintf(out, "\nmonitord summary after %s simulated (%d VMs, %d pipelines)\n",
		duration, len(vms), len(pipes))
	fmt.Fprintf(out, "  raw samples collected: %d\n", agent.Samples())
	fmt.Fprintf(out, "  predictions issued:    %d\n", totalPredictions)
	reported := 0
	for _, p := range pipes {
		mse, n, err := db.AuditMSE(p.key, 1<<30)
		if err != nil || n == 0 {
			continue
		}
		if reported < 12 {
			fmt.Fprintf(out, "  %-28s %4d scored predictions, raw MSE %-10.4g %s\n",
				p.key.String(), n, mse, observationSparkline(db, p.key, 32))
		}
		reported++
	}
	if reported > 12 {
		fmt.Fprintf(out, "  ... and %d more pipelines\n", reported-12)
	}
	return nil
}

// observationSparkline renders the last n observed values of a key as a
// compact unicode strip for the summary report.
func observationSparkline(db *preddb.DB, key preddb.Key, n int) string {
	recs := db.Range(key, time.Unix(0, 0), time.Unix(1<<40, 0))
	var rows []rrd.Row
	for _, r := range recs {
		if r.HasObserved {
			rows = append(rows, rrd.Row{Values: []float64{r.Observed}})
		}
	}
	if len(rows) > n {
		rows = rows[len(rows)-n:]
	}
	return rrd.Sparkline(rows, 0)
}

// deviceOf extracts the paper's deviceID component from a metric name
// ("NIC1_received" → "NIC1"; CPU and memory metrics map to their subsystem).
func deviceOf(m vmtrace.Metric) string {
	s := string(m)
	if i := strings.IndexByte(s, '_'); i > 0 {
		return s[:i]
	}
	return s
}
