package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/monitor"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/preddb"
)

// State directory layout:
//
//	<dir>/manifest.json        clock, sample counter, config fingerprint
//	<dir>/rrd/<vm>.rrd         per-VM round-robin database snapshot
//	<dir>/preddb.db            prediction database snapshot
//	<dir>/pipe/<vm>__<metric>.lar   per-pipeline predictor + bookkeeping
//	<dir>/wal/<vm>__<metric>.wal    per-pipeline observation WAL
//
// Every snapshot file is written atomically (temp + fsync + rename) and
// carries its own checksum; the manifest is written last so its clock only
// ever describes fully-committed state. WALs are reset after the manifest
// commits — a crash in between merely leaves records at or before the
// restored clock, which replay skips.

const (
	pipeMagic    = "LARPIPE1"
	manifestName = "manifest.json"
)

// Per-pipeline recovery outcomes reported on the status endpoint.
const (
	recoveryCold        = "cold"
	recoveryRecovered   = "recovered"
	recoveryQuarantined = "quarantined"
)

// errSimulatedCrash is returned by run when options.crashAfterHours fires:
// the crash test uses it to stop a run dead — no final snapshot, no
// cleanup — exactly what a SIGKILL would leave behind.
var errSimulatedCrash = errors.New("monitord: simulated crash")

// Unreadable or checksum-failing pipe snapshots surface as durable.ErrFrame
// from durable.ReadChecksummedFile; recover quarantines them.

// manifest is the commit record of a snapshot.
type manifest struct {
	Clock       int64  `json:"clock"`
	Samples     int64  `json:"samples"`
	Fingerprint string `json:"fingerprint"`
}

// pipeState is the serialized bookkeeping of one pipeline; Online holds the
// core codec's framed predictor state.
type pipeState struct {
	LastSeen    int64
	Pending     float64
	PendingFor  int64
	HasPending  bool
	Predictions int
	Online      []byte
}

// stateStore owns a monitord state directory.
type stateStore struct {
	dir         string
	fingerprint string

	// Durability instruments; all nil-safe when no registry was attached.
	snapshots      *obs.Counter
	walReplayed    *obs.Counter
	walTruncBytes  *obs.Counter
	quarantines    *obs.Counter
	pipesRecovered *obs.Counter
}

// fingerprintOptions digests every option that shapes the simulated world.
// A state directory written under one fingerprint cannot be warm-restarted
// under another: the deterministic re-simulation that recovery relies on
// would diverge from what the snapshot describes.
func fingerprintOptions(o options) string {
	vms := make([]string, len(o.vms))
	for i, vm := range o.vms {
		vms[i] = string(vm)
	}
	sort.Strings(vms)
	return fmt.Sprintf("seed=%d vms=%v window=%d train=%d audit=%d threshold=%g faults=%q fault-seed=%d",
		o.seed, vms, o.window, o.trainSize, o.auditWin, o.threshold, o.faultSpec, o.faultSeed)
}

// openState creates the state directory tree if needed and binds the
// durability counters on reg (nil leaves the store uninstrumented).
func openState(dir, fingerprint string, reg *obs.Registry) (*stateStore, error) {
	for _, sub := range []string{"", "rrd", "pipe", "wal"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("state dir: %w", err)
		}
	}
	st := &stateStore{dir: dir, fingerprint: fingerprint}
	if reg != nil {
		st.snapshots = reg.Counter1("larpredictor_snapshots_total",
			"Completed durable snapshots (all RRDs, prediction DB, pipelines, manifest).")
		st.walReplayed = reg.Counter1("larpredictor_wal_replayed_records_total",
			"Observation-WAL records replayed during warm restart.")
		st.walTruncBytes = reg.Counter1("larpredictor_wal_truncated_bytes_total",
			"Bytes of torn WAL tail dropped during warm restart.")
		st.quarantines = reg.Counter1("larpredictor_state_quarantines_total",
			"Damaged state files quarantined during warm restart.")
		st.pipesRecovered = reg.Counter1("larpredictor_pipelines_recovered_total",
			"Pipelines whose predictor state was restored on warm restart.")
	}
	return st, nil
}

func (st *stateStore) manifestPath() string { return filepath.Join(st.dir, manifestName) }
func (st *stateStore) preddbPath() string   { return filepath.Join(st.dir, "preddb.db") }

func (st *stateStore) rrdPath(vm string) string {
	return filepath.Join(st.dir, "rrd", vm+".rrd")
}

func pipeFile(p *pipeline) string {
	return fmt.Sprintf("%s__%s", p.vm, p.metric)
}

func (st *stateStore) pipePath(p *pipeline) string {
	return filepath.Join(st.dir, "pipe", pipeFile(p)+".lar")
}

func (st *stateStore) walPath(p *pipeline) string {
	return filepath.Join(st.dir, "wal", pipeFile(p)+".wal")
}

// snapshot persists the whole daemon: every VM's RRD, the prediction DB,
// every pipeline's predictor state, then the manifest, then WAL resets.
// Called from the supervisor loop only, after all slice goroutines joined.
func (st *stateStore) snapshot(agent *monitor.Agent, db *preddb.DB, pipes []*pipeline, o options) error {
	for _, vm := range o.vms {
		vm := vm
		err := durable.WriteFileAtomic(st.rrdPath(string(vm)), func(w io.Writer) error {
			return agent.SaveVM(vm, w)
		})
		if err != nil {
			return fmt.Errorf("snapshot rrd %s: %w", vm, err)
		}
	}
	if err := durable.WriteFileAtomic(st.preddbPath(), db.Save); err != nil {
		return fmt.Errorf("snapshot preddb: %w", err)
	}
	for _, p := range pipes {
		var online bytes.Buffer
		if err := p.online.SaveState(&online); err != nil {
			return fmt.Errorf("snapshot %s predictor: %w", pipeFile(p), err)
		}
		ps := pipeState{
			LastSeen:    p.lastSeen.Unix(),
			Pending:     p.pending,
			PendingFor:  p.pendingFor.Unix(),
			HasPending:  p.hasPending,
			Predictions: p.predictions,
			Online:      online.Bytes(),
		}
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&ps); err != nil {
			return fmt.Errorf("snapshot %s: %w", pipeFile(p), err)
		}
		err := durable.WriteFileAtomic(st.pipePath(p), func(w io.Writer) error {
			return durable.WriteChecksummed(w, pipeMagic, payload.Bytes())
		})
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", pipeFile(p), err)
		}
	}
	m := manifest{Clock: agent.Now().Unix(), Samples: agent.Samples(), Fingerprint: st.fingerprint}
	buf, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	err = durable.WriteFileAtomic(st.manifestPath(), func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	})
	if err != nil {
		return fmt.Errorf("snapshot manifest: %w", err)
	}
	// Only after the manifest commits is the logged span durable elsewhere.
	for _, p := range pipes {
		if p.wal != nil {
			if err := p.wal.Reset(); err != nil {
				return fmt.Errorf("reset wal %s: %w", pipeFile(p), err)
			}
		}
	}
	st.snapshots.Inc()
	return nil
}

// recover performs the warm restart: it verifies the manifest, restores
// RRDs and the prediction DB (quarantining anything damaged), restores each
// pipeline's predictor state or cold-starts it, and stages the WAL records
// the snapshot missed on pipeline.replay — the caller pushes them through
// the engine so replay takes the very same path live rows do. It returns
// the prediction DB the run should continue with. logw receives one line
// per abnormal event.
func (st *stateStore) recover(agent *monitor.Agent, db *preddb.DB, pipes []*pipeline, o options, logw io.Writer) (*preddb.DB, error) {
	for _, p := range pipes {
		p.recovery = recoveryCold
	}

	var m *manifest
	if buf, err := os.ReadFile(st.manifestPath()); err == nil {
		m = &manifest{}
		if jerr := json.Unmarshal(buf, m); jerr != nil {
			st.quarantineAndLog(st.manifestPath(), jerr, logw)
			m = nil
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("read manifest: %w", err)
	}
	if m != nil && m.Fingerprint != st.fingerprint {
		return nil, fmt.Errorf("state dir %s was written by a different configuration:\n  have %s\n  want %s",
			st.dir, m.Fingerprint, st.fingerprint)
	}

	for _, vm := range o.vms {
		path := st.rrdPath(string(vm))
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		} else if err != nil {
			return nil, err
		}
		rerr := agent.RestoreVM(vm, f)
		f.Close()
		if rerr != nil {
			st.quarantineAndLog(path, rerr, logw)
		}
	}

	if f, err := os.Open(st.preddbPath()); err == nil {
		loaded, lerr := preddb.Load(f)
		f.Close()
		if lerr != nil {
			st.quarantineAndLog(st.preddbPath(), lerr, logw)
		} else {
			db = loaded
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if m != nil {
		agent.RestoreClock(time.Unix(m.Clock, 0).UTC(), m.Samples)
	}

	for _, p := range pipes {
		path := st.pipePath(p)
		payload, err := durable.ReadChecksummedFile(path, pipeMagic)
		switch {
		case os.IsNotExist(err):
			// cold: nothing checkpointed yet.
		case err != nil:
			st.quarantineAndLog(path, err, logw)
			p.recovery = recoveryQuarantined
		default:
			var ps pipeState
			if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ps); derr != nil {
				st.quarantineAndLog(path, derr, logw)
				p.recovery = recoveryQuarantined
				break
			}
			if rerr := p.online.RestoreState(bytes.NewReader(ps.Online)); rerr != nil {
				if errors.Is(rerr, core.ErrStateMismatch) {
					// Valid file from another configuration of this pipeline:
					// not damage, just unusable. Cold start and overwrite it
					// at the next snapshot.
					fmt.Fprintf(logw, "monitord: %s: predictor state mismatch, cold starting: %v\n", pipeFile(p), rerr)
					break
				}
				st.quarantineAndLog(path, rerr, logw)
				p.recovery = recoveryQuarantined
				break
			}
			p.lastSeen = time.Unix(ps.LastSeen, 0).UTC()
			p.pending = ps.Pending
			p.pendingFor = time.Unix(ps.PendingFor, 0).UTC()
			p.hasPending = ps.HasPending
			p.predictions = ps.Predictions
			p.recovery = recoveryRecovered
		}

		// Open (or create) the WAL regardless of how the snapshot fared and
		// stage the records the snapshot missed for replay. Replay feeds
		// cold pipelines too: whatever survived the crash still warms them.
		wal, recs, truncated, werr := durable.OpenWAL(st.walPath(p))
		if werr != nil {
			st.quarantineAndLog(st.walPath(p), werr, logw)
			wal, recs, truncated, werr = durable.OpenWAL(st.walPath(p))
			if werr != nil {
				return nil, fmt.Errorf("reopen wal %s: %w", pipeFile(p), werr)
			}
		}
		if truncated > 0 {
			fmt.Fprintf(logw, "monitord: %s: dropped %d bytes of torn WAL tail\n", pipeFile(p), truncated)
			st.walTruncBytes.Add(uint64(truncated))
		}
		p.wal = wal
		p.replay = p.replay[:0]
		for _, rec := range recs {
			if ts := time.Unix(rec.TS, 0).UTC(); !ts.After(p.lastSeen) {
				continue
			}
			p.replay = append(p.replay, rec)
		}
		p.walReplayed = len(p.replay)
		st.walReplayed.Add(uint64(len(p.replay)))
		if p.recovery == recoveryRecovered {
			st.pipesRecovered.Inc()
		}
	}
	return db, nil
}

// closeWALs releases every pipeline's WAL handle at the end of a run.
func closeWALs(pipes []*pipeline) {
	for _, p := range pipes {
		if p.wal != nil {
			p.wal.Close()
			p.wal = nil
		}
	}
}

// quarantineAndLog moves a damaged state file aside and counts it.
func (st *stateStore) quarantineAndLog(path string, cause error, logw io.Writer) {
	st.quarantines.Inc()
	moved, err := durable.Quarantine(path)
	if err != nil {
		fmt.Fprintf(logw, "monitord: quarantine %s failed: %v (cause: %v)\n", path, err, cause)
		return
	}
	fmt.Fprintf(logw, "monitord: quarantined %s -> %s: %v\n", path, moved, cause)
}
