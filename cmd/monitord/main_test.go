package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// baseOptions mirrors the daemon's defaults on a short, single-VM run.
func baseOptions(vms ...vmtrace.VMID) options {
	return options{
		seed:      7,
		duration:  8 * time.Hour,
		vms:       vms,
		window:    5,
		trainSize: 60,
		auditWin:  12,
		threshold: 2.0,
	}
}

func TestRunShortSimulation(t *testing.T) {
	var buf bytes.Buffer
	// 8 simulated hours: enough consolidated samples (96) for the default
	// trainSize of 60, so predictions must flow.
	sum, err := run(&buf, baseOptions(vmtrace.VM2))
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "monitord summary after 8h0m0s") {
		t.Errorf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "simulated hour  1") {
		t.Errorf("missing hourly progress:\n%s", out)
	}
	if sum.Predictions == 0 {
		t.Errorf("no predictions after 8 hours:\n%s", out)
	}
	if !strings.Contains(out, "scored predictions") {
		t.Errorf("missing per-pipeline audit:\n%s", out)
	}
	for _, p := range sum.Pipes {
		if p.Health != core.Healthy.String() {
			t.Errorf("%s: health %s on a fault-free run", p.Key, p.Health)
		}
	}
}

func TestRunQuietSuppressesProgress(t *testing.T) {
	var buf bytes.Buffer
	o := baseOptions(vmtrace.VM3)
	o.duration = 2 * time.Hour
	o.quiet = true
	if _, err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "simulated hour") {
		t.Error("quiet mode printed hourly progress")
	}
}

func TestRunUnknownVM(t *testing.T) {
	o := baseOptions(vmtrace.VMID("VM9"))
	o.duration = time.Hour
	o.quiet = true
	sum, err := run(io.Discard, o)
	if err != nil {
		t.Fatal(err) // the agent monitors it; the sampler reports misses
	}
	// An unknown VM yields no samples → no profiled rows → no predictions.
	if sum.Predictions != 0 {
		t.Errorf("unknown VM produced %d predictions", sum.Predictions)
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	o := baseOptions(vmtrace.VM2)
	o.faultSpec = "tsunami:p=1"
	if _, err := run(io.Discard, o); err == nil {
		t.Fatal("run accepted an invalid fault spec")
	}
}

// TestSupervisorRecoversPanickingPipeline crashes one pipeline mid-run and
// checks the supervisor quarantines, restarts, and re-warms it while every
// other pipeline keeps flowing.
func TestSupervisorRecoversPanickingPipeline(t *testing.T) {
	o := baseOptions(vmtrace.VM2)
	o.duration = 14 * time.Hour
	o.quiet = true
	o.cooldown = 2 * time.Hour
	victim := "VM2/CPU/CPU_usedsec"
	o.panicHook = func(p *pipeline, hour int) {
		if hour == 1 && p.key.String() == victim {
			panic("injected test crash")
		}
	}
	var buf bytes.Buffer
	sum, err := run(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	ps := sum.pipe(victim)
	if ps == nil {
		t.Fatalf("no status for %s", victim)
	}
	if ps.Panics != 1 {
		t.Errorf("panics = %d, want 1", ps.Panics)
	}
	if ps.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", ps.Restarts)
	}
	// Restart at hour ~4, retrain by hour ~9 (60 consolidated samples):
	// the recycled pipeline must be producing forecasts again.
	if ps.Predictions == 0 {
		t.Error("victim pipeline issued no predictions after restart")
	}
	if ps.Health != core.Healthy.String() {
		t.Errorf("victim health = %s, want Healthy after recovery", ps.Health)
	}
	if !strings.Contains(buf.String(), "supervisor:") {
		t.Errorf("summary does not report the supervised restart:\n%s", buf.String())
	}
	// The crash stayed contained.
	for _, p := range sum.Pipes {
		if p.Key != victim && (p.Panics != 0 || p.Restarts != 0) {
			t.Errorf("%s: panics=%d restarts=%d leaked from the victim", p.Key, p.Panics, p.Restarts)
		}
	}
}

// TestStatusEndpointServesAndShutsDown polls the JSON status endpoint
// mid-run (via the addrReady hook) and verifies the listener is closed —
// not leaked — once the run ends.
func TestStatusEndpointServesAndShutsDown(t *testing.T) {
	o := baseOptions(vmtrace.VM2)
	o.duration = 2 * time.Hour
	o.quiet = true
	o.listen = "127.0.0.1:0"
	// The whole simulated run takes milliseconds of wall time, so poll the
	// endpoint synchronously from the ready hook (it runs on run's
	// goroutine, before the simulation loop starts).
	var liveAddr string
	var polled bool
	o.addrReady = func(addr string) {
		liveAddr = addr
		resp, err := http.Get(fmt.Sprintf("http://%s/", addr))
		if err != nil {
			t.Errorf("status endpoint: %v", err)
			return
		}
		defer resp.Body.Close()
		var doc struct {
			Samples int64 `json:"samples"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Errorf("decode status: %v", err)
			return
		}
		polled = true
	}

	if _, err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if !polled {
		t.Fatal("status endpoint was never successfully polled")
	}
	addr := liveAddr
	// The run has returned; the graceful shutdown must have closed the
	// listener rather than leaking it.
	if conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		conn.Close()
		t.Error("status listener still accepting connections after run returned")
	}
}

func TestDeviceOf(t *testing.T) {
	cases := map[vmtrace.Metric]string{
		vmtrace.NIC1RX:     "NIC1",
		vmtrace.VD2Write:   "VD2",
		vmtrace.CPUUsedSec: "CPU",
		vmtrace.MemSize:    "Memory",
	}
	for m, want := range cases {
		if got := deviceOf(m); got != want {
			t.Errorf("deviceOf(%s) = %q, want %q", m, got, want)
		}
	}
}
