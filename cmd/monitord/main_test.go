package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func TestRunShortSimulation(t *testing.T) {
	var buf bytes.Buffer
	// 8 simulated hours: enough consolidated samples (96) for the default
	// trainSize of 60, so predictions must flow.
	err := run(&buf, 7, 8*time.Hour, []vmtrace.VMID{vmtrace.VM2}, 5, 60, 12, 2.0, false, "")
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "monitord summary after 8h0m0s") {
		t.Errorf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "simulated hour  1") {
		t.Errorf("missing hourly progress:\n%s", out)
	}
	if strings.Contains(out, "predictions issued:    0") {
		t.Errorf("no predictions after 8 hours:\n%s", out)
	}
	if !strings.Contains(out, "scored predictions") {
		t.Errorf("missing per-pipeline audit:\n%s", out)
	}
}

func TestRunQuietSuppressesProgress(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, 7, 2*time.Hour, []vmtrace.VMID{vmtrace.VM3}, 5, 60, 12, 2.0, true, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "simulated hour") {
		t.Error("quiet mode printed hourly progress")
	}
}

func TestRunUnknownVM(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, 7, time.Hour, []vmtrace.VMID{"VM9"}, 5, 60, 12, 2.0, true, "")
	if err != nil {
		t.Fatal(err) // the agent monitors it; the sampler reports misses
	}
	// An unknown VM yields no samples → no profiled rows → no predictions.
	if !strings.Contains(buf.String(), "predictions issued:    0") {
		t.Errorf("unknown VM produced predictions:\n%s", buf.String())
	}
}

func TestDeviceOf(t *testing.T) {
	cases := map[vmtrace.Metric]string{
		vmtrace.NIC1RX:     "NIC1",
		vmtrace.VD2Write:   "VD2",
		vmtrace.CPUUsedSec: "CPU",
		vmtrace.MemSize:    "Memory",
	}
	for m, want := range cases {
		if got := deviceOf(m); got != want {
			t.Errorf("deviceOf(%s) = %q, want %q", m, got, want)
		}
	}
}
