package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/faults"
	"github.com/acis-lab/larpredictor/internal/preddb"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// durableOptions is a run short enough to be fast but long enough that the
// predictor trains (trainSize 24 = 2 simulated hours of consolidated rows)
// and forecasts for many hours on both sides of the crash point.
func durableOptions(dir string) options {
	o := baseOptions(vmtrace.VM2)
	o.duration = 12 * time.Hour
	o.trainSize = 24
	o.auditWin = 8
	o.quiet = true
	o.stateDir = dir
	o.snapEvery = 4 * time.Hour
	return o
}

func loadStatePreddb(t *testing.T, dir string) *preddb.DB {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "preddb.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db, err := preddb.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCrashRecoveryResumesExactly is the tentpole acceptance test: kill the
// daemon mid-run (between snapshots, so the WAL matters), restart it
// against the same state directory, and require that it resumes as
// "recovered" — no retraining — with results identical to a run that never
// crashed.
func TestCrashRecoveryResumesExactly(t *testing.T) {
	crashDir := t.TempDir()

	// Run 1: crash after 6 simulated hours. The last snapshot landed at
	// hour 4, so hours 5-6 exist only in the WALs.
	o := durableOptions(crashDir)
	o.crashAfterHours = 6
	if _, err := run(io.Discard, o); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("crash run returned %v, want errSimulatedCrash", err)
	}

	// Run 2: restart against the same state dir and finish the 12 hours.
	o.crashAfterHours = 0
	resumed, err := run(io.Discard, o)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, p := range resumed.Pipes {
		if p.Recovery != recoveryRecovered {
			t.Errorf("%s: recovery %q, want %q", p.Key, p.Recovery, recoveryRecovered)
		}
		replayed += p.WALReplayed
	}
	if replayed == 0 {
		t.Error("no WAL records replayed despite crashing between snapshots")
	}

	// Reference: the same options, never crashed, fresh state dir.
	cleanDir := t.TempDir()
	clean, err := run(io.Discard, durableOptions(cleanDir))
	if err != nil {
		t.Fatal(err)
	}

	if resumed.Samples != clean.Samples {
		t.Errorf("samples %d != %d", resumed.Samples, clean.Samples)
	}
	if resumed.Predictions != clean.Predictions {
		t.Errorf("predictions %d != %d", resumed.Predictions, clean.Predictions)
	}
	if resumed.Retrains != clean.Retrains {
		t.Errorf("retrains %d != %d (restart must not retrain)", resumed.Retrains, clean.Retrains)
	}
	for _, cp := range clean.Pipes {
		rp := resumed.pipe(cp.Key)
		if rp == nil {
			t.Fatalf("pipeline %s missing after recovery", cp.Key)
		}
		if rp.Predictions != cp.Predictions || rp.Retrains != cp.Retrains {
			t.Errorf("%s: predictions/retrains %d/%d != %d/%d",
				cp.Key, rp.Predictions, rp.Retrains, cp.Predictions, cp.Retrains)
		}
		if rp.Scored != cp.Scored || rp.ScoredMSE != cp.ScoredMSE {
			t.Errorf("%s: scored MSE %d/%.17g != %d/%.17g — forecasts diverged after restart",
				cp.Key, rp.Scored, rp.ScoredMSE, cp.Scored, cp.ScoredMSE)
		}
	}

	// Strongest check: the final prediction databases are record-for-record
	// identical — every observation and every forecast, bit for bit.
	dbA := loadStatePreddb(t, crashDir)
	dbB := loadStatePreddb(t, cleanDir)
	keysA, keysB := dbA.Keys(), dbB.Keys()
	if len(keysA) == 0 || len(keysA) != len(keysB) {
		t.Fatalf("key counts differ: %d vs %d", len(keysA), len(keysB))
	}
	wide := time.Unix(1<<40, 0)
	for _, k := range keysB {
		ra := dbA.Range(k, time.Unix(0, 0), wide)
		rb := dbB.Range(k, time.Unix(0, 0), wide)
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d records vs %d", k, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s record %d: %+v != %+v", k, i, ra[i], rb[i])
			}
		}
	}
}

// TestCorruptSnapshotQuarantined flips a bit in one pipeline's snapshot and
// checks that only that pipeline cold-starts: the file is renamed aside,
// the other pipelines recover, and the daemon keeps running.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	o := durableOptions(dir)
	o.duration = 6 * time.Hour
	if _, err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}

	snaps, err := filepath.Glob(filepath.Join(dir, "pipe", "*.lar"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("pipe snapshots: %v (err %v)", snaps, err)
	}
	victim := snaps[0]
	if err := faults.FlipBit(victim, -10, 3); err != nil {
		t.Fatal(err)
	}

	// Resume for two more hours against the damaged state dir.
	o.duration = 8 * time.Hour
	sum, err := run(io.Discard, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	wantKey := filepath.Base(victim)
	quarantined, recovered := 0, 0
	for _, p := range sum.Pipes {
		switch p.Recovery {
		case recoveryQuarantined:
			quarantined++
		case recoveryRecovered:
			recovered++
		}
	}
	if quarantined != 1 {
		t.Errorf("%d pipelines quarantined, want exactly 1 (victim %s)", quarantined, wantKey)
	}
	if recovered != len(sum.Pipes)-1 {
		t.Errorf("%d of %d pipelines recovered", recovered, len(sum.Pipes)-1)
	}
}

// TestStateDirFingerprintMismatch: a state dir written under one workload
// configuration refuses to warm-restart under another instead of silently
// mixing incompatible state.
func TestStateDirFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	o := durableOptions(dir)
	o.duration = 3 * time.Hour
	if _, err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	o.seed++
	if _, err := run(io.Discard, o); err == nil {
		t.Fatal("run with mismatched fingerprint succeeded")
	}
}

// TestCompletedRunExtendsFromState: a finished run leaves a final snapshot;
// rerunning with a longer -duration picks up where it ended.
func TestCompletedRunExtendsFromState(t *testing.T) {
	dir := t.TempDir()
	o := durableOptions(dir)
	o.duration = 6 * time.Hour
	first, err := run(io.Discard, o)
	if err != nil {
		t.Fatal(err)
	}
	o.duration = 9 * time.Hour
	second, err := run(io.Discard, o)
	if err != nil {
		t.Fatal(err)
	}
	if second.Samples <= first.Samples {
		t.Errorf("extension did not advance: %d -> %d samples", first.Samples, second.Samples)
	}
	for _, p := range second.Pipes {
		if p.Recovery != recoveryRecovered {
			t.Errorf("%s: recovery %q on extension", p.Key, p.Recovery)
		}
	}
}
