package main

import (
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// chaosSpec injects spikes, dropouts, and NaN bursts into VM3's streams
// while VM2 stays clean. The spiked streams keep retraining at the minimum
// QA spacing — thrash — until the circuit breaker opens and the pipelines
// degrade to the fallback selector. The spike rate matters: retraining on
// spiky history inflates the normalizer's scale, which mutes rare huge
// spikes in the audit, so frequent moderate spikes (p=0.1/minute) are what
// keep the normalized audit MSE above threshold after every retrain.
const chaosSpec = "spike:p=0.10,mag=20,add=10,on=VM3/CPU_usedsec|VM3/NIC1_received;" +
	"dropout:p=0.06,on=VM3/VD1_read;" +
	"spike:p=0.10,mag=20,add=10,on=VM3/VD1_read|VM3/VD1_write;" +
	"nanburst:period=5h,len=50m,on=VM3/VD1_write"

var spikedKeys = []string{
	"VM3/CPU/CPU_usedsec",
	"VM3/NIC1/NIC1_received",
	"VM3/VD1/VD1_read",
	"VM3/VD1/VD1_write",
}

func chaosOptions() options {
	o := baseOptions(vmtrace.VM2, vmtrace.VM3)
	o.duration = 36 * time.Hour
	o.quiet = true
	// Tighter QA than the daemon default: the audit must notice moderate
	// spikes even after the normalizer has been refit on faulty history.
	o.threshold = 1.0
	return o
}

// TestChaosPipelineResilience drives the full daemon through injected
// dropouts, NaN bursts, and value spikes on four VM3 streams and asserts
// the resilience contract: the run completes, faulty streams degrade
// (never silently Healthy) with bounded retrain attempts, and clean
// streams forecast exactly as well as on a fault-free run.
func TestChaosPipelineResilience(t *testing.T) {
	clean, err := run(io.Discard, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}

	o := chaosOptions()
	o.faultSpec = chaosSpec
	o.faultSeed = 99
	faulty, err := run(io.Discard, o)
	if err != nil {
		t.Fatalf("chaos run did not complete: %v", err)
	}

	// Consolidated observations per stream over the run: one per 5 minutes.
	observations := int(o.duration / (5 * time.Minute))

	for _, key := range spikedKeys {
		p := faulty.pipe(key)
		if p == nil {
			t.Fatalf("no status for %s", key)
		}
		// Never silently Healthy: the faulted stream must surface its
		// trouble — a degraded end state and a tripped breaker.
		if p.Health != core.Degraded.String() && p.Health != core.Fallback.String() {
			t.Errorf("%s: health %s, want Degraded or Fallback", key, p.Health)
		}
		if p.BreakerTrips == 0 {
			t.Errorf("%s: breaker never tripped under sustained faults", key)
		}
		if p.DegradedForecasts == 0 {
			t.Errorf("%s: no degraded-mode forecasts served", key)
		}
		// Bounded retraining: the QA can fire at most every
		// max(MinRetrainSpacing, AuditWindow) observations, and the
		// breaker must keep the attempt count far below even that.
		attempts := p.Retrains + p.RetrainFailures
		if limit := observations / o.auditWin; attempts > limit/2 {
			t.Errorf("%s: %d retrain attempts (> %d): retry loop not bounded",
				key, attempts, limit/2)
		}
		// The pipeline must not be wedged: forecasts kept flowing. (The
		// NaN-burst stream legitimately misses rows while whole
		// consolidation intervals are unknown, so the bar is a third of
		// the observations, not all of them.)
		if p.Predictions < observations/3 {
			t.Errorf("%s: only %d predictions over %d observations — pipeline wedged",
				key, p.Predictions, observations)
		}
	}

	// Clean VM2 streams: same health and forecast quality as the
	// fault-free reference run (the fault schedule must not leak).
	for _, p := range faulty.Pipes {
		if !strings.HasPrefix(p.Key, "VM2/") {
			continue
		}
		if p.Health != core.Healthy.String() {
			t.Errorf("%s: health %s on a clean stream", p.Key, p.Health)
		}
		ref := clean.pipe(p.Key)
		if ref == nil || ref.Scored == 0 {
			continue
		}
		if p.Scored == 0 {
			t.Errorf("%s: no scored predictions under chaos", p.Key)
			continue
		}
		diff := math.Abs(p.ScoredMSE-ref.ScoredMSE) / ref.ScoredMSE
		if diff > 0.10 {
			t.Errorf("%s: MSE %.4g vs fault-free %.4g (%.1f%% apart)",
				p.Key, p.ScoredMSE, ref.ScoredMSE, 100*diff)
		}
	}

	// No supervisor incidents: faults degrade pipelines, they must not
	// crash them.
	for _, p := range faulty.Pipes {
		if p.Panics != 0 {
			t.Errorf("%s: %d panics under fault injection", p.Key, p.Panics)
		}
	}
}

// TestChaosSummaryReportsDegradation checks the operator-facing text report
// calls out the degraded pipelines.
func TestChaosSummaryReportsDegradation(t *testing.T) {
	o := chaosOptions()
	o.duration = 24 * time.Hour
	o.faultSpec = chaosSpec
	o.faultSeed = 99
	var buf strings.Builder
	if _, err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pipelines with incidents") {
		t.Errorf("summary does not surface incidents:\n%s", out)
	}
	if !strings.Contains(out, core.Degraded.String()) {
		t.Errorf("summary never labels a pipeline Degraded:\n%s", out)
	}
}
