// Command experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic trace set:
//
//	experiments                 # run the full suite
//	experiments -run table2     # a single experiment
//	experiments -seed 42 -folds 5
//
// Experiments: figure4, figure5, table2, table3, figure6, tournament,
// headline, ablations, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/acis-lab/larpredictor/internal/experiments"
)

func main() {
	var (
		seed  = flag.Int64("seed", 2007, "base seed for trace synthesis and cross-validation")
		folds = flag.Int("folds", 10, "cross-validation folds per trace")
		run   = flag.String("run", "all", "experiment to run: figure4|figure5|table2|table3|figure6|tournament|headline|ablations|all")
		asCSV = flag.Bool("csv", false, "emit machine-readable CSV (figure4, figure5, figure6, table2 only)")
	)
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Folds: *folds}
	if *asCSV {
		if err := runExperimentCSV(os.Stdout, *run, opts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := runExperiment(os.Stdout, *run, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runExperiment(out io.Writer, name string, opts experiments.Options) error {
	switch name {
	case "all":
		return experiments.RunAll(opts, out)
	case "figure4":
		r, err := experiments.Figure4(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "figure5":
		r, err := experiments.Figure5(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "table2":
		r, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "table3":
		r, err := experiments.Table3(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "figure6":
		r, err := experiments.Figure6(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "tournament":
		r, err := experiments.TournamentCompare(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "headline":
		r, err := experiments.Headline(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Render())
	case "ablations":
		r, err := experiments.Ablations(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.RenderAblations(r))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// runExperimentCSV emits machine-readable output for the plottable results.
func runExperimentCSV(out io.Writer, name string, opts experiments.Options) error {
	switch name {
	case "figure4":
		r, err := experiments.Figure4(opts)
		if err != nil {
			return err
		}
		return r.WriteCSV(out)
	case "figure5":
		r, err := experiments.Figure5(opts)
		if err != nil {
			return err
		}
		return r.WriteCSV(out)
	case "figure6":
		r, err := experiments.Figure6(opts)
		if err != nil {
			return err
		}
		return r.WriteCSV(out)
	case "table2":
		r, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		return r.WriteCSV(out)
	default:
		return fmt.Errorf("no CSV form for experiment %q", name)
	}
}
