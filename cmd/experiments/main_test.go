package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/experiments"
)

func fastOpts() experiments.Options { return experiments.Options{Seed: 2007, Folds: 2} }

func TestRunSingleExperiments(t *testing.T) {
	cases := map[string]string{
		"figure4":  "VM2_load15",
		"figure5":  "VM2_PktIn",
		"table2":   "Normalized Prediction MSE",
		"figure6":  "W-Cum.MSE",
		"headline": "forecasting accuracy",
	}
	for name, want := range cases {
		var buf bytes.Buffer
		if err := runExperiment(&buf, name, fastOpts()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s output missing %q", name, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := runExperiment(&bytes.Buffer{}, "nope", fastOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := runExperimentCSV(&buf, "figure4", fastOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "step,observed_best,lar_selected,nws_selected") {
		t.Errorf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	if err := runExperimentCSV(&bytes.Buffer{}, "headline", fastOpts()); err == nil {
		t.Error("CSV for headline accepted")
	}
}
