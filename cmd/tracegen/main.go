// Command tracegen emits the synthetic VM resource traces as CSV:
//
//	tracegen -out traces/                # full 5-VM × 12-metric set, one file per VM
//	tracegen -vm VM2 -metric CPU_usedsec # one trace to stdout
//	tracegen -special load15             # the Figure-4 trace VM2_load15
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func main() {
	var (
		seed    = flag.Int64("seed", 2007, "trace synthesis seed")
		out     = flag.String("out", "", "output directory (default: single trace to stdout)")
		vm      = flag.String("vm", "", "emit only this VM (VM1..VM5)")
		metric  = flag.String("metric", "", "emit only this metric (requires -vm)")
		special = flag.String("special", "", "emit a special trace: load15 | pktin")
	)
	flag.Parse()

	if err := run(os.Stdout, *seed, *out, *vm, *metric, *special); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, seed int64, out, vm, metric, special string) error {
	if special != "" {
		var s *timeseries.Series
		switch special {
		case "load15":
			s = vmtrace.Load15(seed)
		case "pktin":
			s = vmtrace.PktIn(seed)
		default:
			return fmt.Errorf("unknown special trace %q (want load15 or pktin)", special)
		}
		return timeseries.WriteCSV(stdout, s)
	}

	ts := vmtrace.StandardTraceSet(seed)

	if vm != "" && metric != "" {
		s, err := ts.Get(vmtrace.VMID(vm), vmtrace.Metric(metric))
		if err != nil {
			return err
		}
		return timeseries.WriteCSV(stdout, s)
	}
	if vm != "" || metric != "" {
		if out == "" && metric == "" {
			// Emit all metrics of one VM as a multi-column CSV to stdout.
			return writeVM(stdout, ts, vmtrace.VMID(vm))
		}
		return fmt.Errorf("-metric requires -vm")
	}

	if out == "" {
		return fmt.Errorf("either -out DIR, -vm, or -special is required")
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, v := range vmtrace.VMs() {
		path := filepath.Join(out, string(v)+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := writeVM(f, ts, v); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	return nil
}

// writeVM emits all twelve metrics of one VM as an aligned multi-column CSV.
func writeVM(w io.Writer, ts *vmtrace.TraceSet, vm vmtrace.VMID) error {
	var series []*timeseries.Series
	for _, m := range vmtrace.Metrics() {
		s, err := ts.Get(vm, m)
		if err != nil {
			return err
		}
		series = append(series, s)
	}
	return timeseries.WriteMultiCSV(w, series)
}
