package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

func TestRunSingleTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 1, "", "VM2", "CPU_usedsec", ""); err != nil {
		t.Fatal(err)
	}
	s, err := timeseries.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "VM2_CPU_usedsec" || s.Len() != 288 {
		t.Errorf("trace = %q with %d samples", s.Name, s.Len())
	}
}

func TestRunSpecialTraces(t *testing.T) {
	for _, sp := range []string{"load15", "pktin"} {
		var buf bytes.Buffer
		if err := run(&buf, 1, "", "", "", sp); err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		s, err := timeseries.ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 144 {
			t.Errorf("%s: %d samples", sp, s.Len())
		}
	}
	if err := run(&bytes.Buffer{}, 1, "", "", "", "bogus"); err == nil {
		t.Error("unknown special accepted")
	}
}

func TestRunWholeVMToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 1, "", "VM3", "", ""); err != nil {
		t.Fatal(err)
	}
	series, err := timeseries.ReadMultiCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 12 {
		t.Errorf("columns = %d, want 12", len(series))
	}
}

func TestRunFullSetToDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := run(&bytes.Buffer{}, 1, dir, "", "", ""); err != nil {
		t.Fatal(err)
	}
	for _, vm := range []string{"VM1", "VM2", "VM3", "VM4", "VM5"} {
		path := filepath.Join(dir, vm+".csv")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		series, err := timeseries.ReadMultiCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(series) != 12 {
			t.Errorf("%s: %d columns", path, len(series))
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, 1, "", "", "CPU_usedsec", ""); err == nil ||
		!strings.Contains(err.Error(), "-vm") {
		t.Error("-metric without -vm accepted")
	}
	if err := run(&bytes.Buffer{}, 1, "", "", "", ""); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run(&bytes.Buffer{}, 1, "", "VM9", "CPU_usedsec", ""); err == nil {
		t.Error("unknown VM accepted")
	}
}
