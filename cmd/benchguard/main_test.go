package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	path := writeBench(t, "bench.txt", `goos: linux
goarch: amd64
pkg: example.com/x
BenchmarkFast-16    	 1000000	      1042 ns/op	     978190 samples/sec	       0 B/op	       0 allocs/op
BenchmarkFast-16    	 1000000	      1058 ns/op	     970000 samples/sec	       0 B/op	       0 allocs/op
BenchmarkSlow/sub=1-16 	      10	   5000000 ns/op	       3 allocs/op
PASS
ok  	example.com/x	2.5s
`)
	got, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	fast, ok := got["BenchmarkFast-16"]
	if !ok {
		t.Fatalf("BenchmarkFast-16 missing; parsed %d benchmarks", len(got))
	}
	if len(fast.time) != 2 || fast.time[0] != 1042 || fast.time[1] != 1058 {
		t.Errorf("fast.time = %v, want [1042 1058]", fast.time)
	}
	if len(fast.allocs) != 2 || fast.allocs[0] != 0 {
		t.Errorf("fast.allocs = %v, want [0 0]", fast.allocs)
	}
	slow, ok := got["BenchmarkSlow/sub=1-16"]
	if !ok {
		t.Fatal("BenchmarkSlow/sub=1-16 missing")
	}
	if len(slow.time) != 1 || slow.time[0] != 5e6 {
		t.Errorf("slow.time = %v, want [5e6]", slow.time)
	}
	if len(slow.allocs) != 1 || slow.allocs[0] != 3 {
		t.Errorf("slow.allocs = %v, want [3]", slow.allocs)
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	path := writeBench(t, "junk.txt", `BenchmarkNotARun this line has no count
Benchmark
random text
`)
	got, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %d benchmarks from junk, want 0", len(got))
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
