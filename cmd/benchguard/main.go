// Command benchguard compares two `go test -bench` output files and fails
// when the new run regresses against the old one. It is the pass/fail gate
// behind `make bench-guard` and the CI bench-regression job: benchstat (when
// installed) prints the statistician's view, benchguard decides.
//
//	benchguard [-max-time-delta 10] bench-old.txt bench-new.txt
//
// A benchmark regresses when its median time/op grows by more than
// -max-time-delta percent, or when its median allocs/op grows at all (the
// steady-state paths are zero-allocation by contract, so any new allocation
// is a bug, not noise). Benchmarks present in only one file are reported
// and skipped: a brand-new benchmark has no baseline to regress from.
//
// Medians over `-count` repetitions keep one descheduled run from failing
// the gate; run the benchmarks with -count 6 or more for a stable verdict.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// series collects every repetition of one benchmark's metrics.
type series struct {
	time   []float64 // ns/op
	allocs []float64 // allocs/op
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// parse reads a `go test -bench` output file into per-benchmark series.
// Benchmark lines look like:
//
//	BenchmarkName/sub-16  20  1022296 ns/op  978190 samples/sec  0 allocs/op
//
// i.e. name, iteration count, then value/unit pairs. Everything else
// (headers, PASS, ok lines) is skipped.
func parse(path string) (map[string]*series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]*series)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; not a benchmark line
		}
		name := fields[0]
		s := out[name]
		if s == nil {
			s = &series{}
			out[name] = s
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.time = append(s.time, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func main() {
	maxTimeDelta := flag.Float64("max-time-delta", 10,
		"maximum allowed increase in median time/op, in percent")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchguard [flags] bench-old.txt bench-new.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	new_, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(new_))
	for name := range new_ {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	compared := 0
	for _, name := range names {
		o, ok := old[name]
		if !ok {
			fmt.Printf("new       %-60s (no baseline; skipped)\n", name)
			continue
		}
		n := new_[name]
		compared++

		ot, nt := median(o.time), median(n.time)
		bad := false
		detail := ""
		if ot > 0 {
			delta := 100 * (nt - ot) / ot
			detail = fmt.Sprintf("time/op %11.0f -> %11.0f ns (%+6.1f%%)", ot, nt, delta)
			bad = bad || delta > *maxTimeDelta
		}
		if len(o.allocs) > 0 && len(n.allocs) > 0 {
			oa, na := median(o.allocs), median(n.allocs)
			detail += fmt.Sprintf("  allocs/op %6.0f -> %6.0f", oa, na)
			bad = bad || na > oa
		}
		verdict := "ok"
		if bad {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-9s %-60s %s\n", verdict, name, detail)
	}
	for name := range old {
		if _, ok := new_[name]; !ok {
			fmt.Printf("gone      %-60s (baseline only; skipped)\n", name)
		}
	}

	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmarks in common between the two files")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) beyond the gate (time/op +%.0f%%, allocs/op +0)\n",
			failed, *maxTimeDelta)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmark(s) within the gate (time/op +%.0f%%, allocs/op +0)\n",
		compared, *maxTimeDelta)
}
