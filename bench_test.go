// Benchmarks regenerating every table and figure of the paper, plus the
// ablation benches DESIGN.md calls out. Each experiment bench runs the full
// driver once per iteration and reports the headline quality metric alongside
// the timing, so `go test -bench=.` doubles as the reproduction harness:
//
//	go test -bench=BenchmarkTable2 -benchmem
//	go test -bench=BenchmarkAblation -benchtime=1x
package larpredictor_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	larpredictor "github.com/acis-lab/larpredictor"
	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/evaluation"
	"github.com/acis-lab/larpredictor/internal/experiments"
	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/pca"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// benchOpts keeps experiment benches affordable per iteration while using
// the same protocol as the published run (cmd/experiments uses 10 folds).
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 2007, Folds: 3}
}

// BenchmarkFigure4 regenerates the best-predictor selection timeline for
// trace VM2_load15 (paper Figure 4).
func BenchmarkFigure4(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		acc = r.LARAccuracy
	}
	b.ReportMetric(100*acc, "LAR-accuracy-%")
}

// BenchmarkFigure5 regenerates the selection timeline for trace VM2_PktIn
// (paper Figure 5).
func BenchmarkFigure5(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		acc = r.LARAccuracy
	}
	b.ReportMetric(100*acc, "LAR-accuracy-%")
}

// BenchmarkTable2 regenerates the normalized-MSE table for all twelve VM1
// metrics (paper Table 2).
func BenchmarkTable2(b *testing.B) {
	var lar float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lar = 0
		n := 0
		for _, row := range r.Rows {
			if !row.Degenerate {
				lar += row.LAR
				n++
			}
		}
		lar /= float64(n)
	}
	b.ReportMetric(lar, "mean-LAR-MSE")
}

// BenchmarkTable3 regenerates the best-predictor matrix over all 60 traces
// (paper Table 3).
func BenchmarkTable3(b *testing.B) {
	var stars float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		stars = r.StarFraction()
	}
	b.ReportMetric(100*stars, "star-%")
}

// BenchmarkFigure6 regenerates the P-LARP/Knn-LARP/Cum.MSE/W-Cum.MSE
// comparison on VM4 (paper Figure 6).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline regenerates the paper's aggregate claims (§7.1/§7.2.2):
// forecasting-accuracy advantage over the NWS and the beats-best-expert and
// beats-NWS trace fractions.
func BenchmarkHeadline(b *testing.B) {
	var r *experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Headline(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.MeanLARAccuracy, "LAR-accuracy-%")
	b.ReportMetric(100*(r.MeanLARAccuracy-r.MeanNWSAccuracy), "accuracy-advantage-pts")
	b.ReportMetric(100*r.LARBeatsBestExpert, "beats-best-expert-%")
	b.ReportMetric(100*r.LARBeatsNWS, "beats-NWS-%")
}

// benchTrace returns a fixed regime-switching trace for the ablations.
func benchTrace(b *testing.B) []float64 {
	b.Helper()
	ts := vmtrace.StandardTraceSet(2007)
	s, err := ts.Get(vmtrace.VM4, vmtrace.NIC1RX)
	if err != nil {
		b.Fatal(err)
	}
	return s.Values
}

// evalWith cross-validates the bench trace under a config and reports MSE
// and accuracy.
func evalWith(b *testing.B, cfg core.Config) (mse, acc float64) {
	b.Helper()
	o := evaluation.DefaultOptions(cfg, 2007)
	o.Folds = 3
	o.WarmNWS = true
	r, err := evaluation.EvaluateTrace(larpredictor.NewSeries("bench", benchTrace(b)), o)
	if err != nil {
		b.Fatal(err)
	}
	return r.LAR, r.LARAccuracy
}

// BenchmarkAblationPCADim sweeps the projected dimension n (the paper fixes
// n = 2); "raw" disables PCA and classifies in window space.
func BenchmarkAblationPCADim(b *testing.B) {
	dims := []int{1, 2, 3, 4, 0} // 0 = PCA disabled
	for _, n := range dims {
		name := fmt.Sprintf("n=%d", n)
		if n == 0 {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(5)
			if n == 0 {
				cfg.DisablePCA = true
			} else {
				cfg.PCAComponents = n
			}
			var mse, acc float64
			for i := 0; i < b.N; i++ {
				mse, acc = evalWith(b, cfg)
			}
			b.ReportMetric(mse, "LAR-MSE")
			b.ReportMetric(100*acc, "accuracy-%")
		})
	}
}

// BenchmarkAblationK sweeps the k-NN neighbor count (the paper fixes k = 3).
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{1, 3, 5, 7, 9} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := core.DefaultConfig(5)
			cfg.K = k
			var mse, acc float64
			for i := 0; i < b.N; i++ {
				mse, acc = evalWith(b, cfg)
			}
			b.ReportMetric(mse, "LAR-MSE")
			b.ReportMetric(100*acc, "accuracy-%")
		})
	}
}

// BenchmarkAblationWindow sweeps the prediction order m (the paper uses 5
// and 16).
func BenchmarkAblationWindow(b *testing.B) {
	for _, m := range []int{4, 5, 8, 16, 32} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var mse, acc float64
			for i := 0; i < b.N; i++ {
				mse, acc = evalWith(b, core.DefaultConfig(m))
			}
			b.ReportMetric(mse, "LAR-MSE")
			b.ReportMetric(100*acc, "accuracy-%")
		})
	}
}

// BenchmarkAblationPool compares the paper's three-expert pool against the
// extended eight-expert pool (§8: "incorporate more prediction models").
func BenchmarkAblationPool(b *testing.B) {
	pools := []struct {
		name string
		pool *predictors.Pool
	}{
		{"paper3", predictors.PaperPool(5)},
		{"extended8", predictors.ExtendedPool(5)},
	}
	for _, p := range pools {
		b.Run(p.name, func(b *testing.B) {
			cfg := core.DefaultConfig(5)
			cfg.Pool = p.pool
			var mse, acc float64
			for i := 0; i < b.N; i++ {
				mse, acc = evalWith(b, cfg)
			}
			b.ReportMetric(mse, "LAR-MSE")
			b.ReportMetric(100*acc, "accuracy-%")
		})
	}
}

// BenchmarkAblationVote compares the paper's majority vote with the
// distance-weighted and probability strategies its related work surveys.
func BenchmarkAblationVote(b *testing.B) {
	for _, v := range []knn.VoteStrategy{knn.MajorityVote, knn.DistanceWeightedVote, knn.ProbabilityVote} {
		b.Run(v.String(), func(b *testing.B) {
			cfg := core.DefaultConfig(5)
			cfg.Vote = v
			var mse, acc float64
			for i := 0; i < b.N; i++ {
				mse, acc = evalWith(b, cfg)
			}
			b.ReportMetric(mse, "LAR-MSE")
			b.ReportMetric(100*acc, "accuracy-%")
		})
	}
}

// BenchmarkPCABackend compares the full Jacobi decomposition against
// subspace power iteration for the n = 2 projection the LARPredictor needs
// (the paper's §7.3 cost discussion).
func BenchmarkPCABackend(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{5, 16, 32, 64} {
		rows := make([][]float64, 4*d)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * float64(1+j%5)
			}
		}
		for _, backend := range []struct {
			name string
			b    pca.Backend
		}{
			{"jacobi", pca.JacobiBackend},
			{"power", pca.PowerIterationBackend},
		} {
			b.Run(fmt.Sprintf("d=%d/%s", d, backend.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pca.FitBackend(rows, pca.FixedComponents(2), backend.b); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKNNSearch compares the brute-force and k-d tree neighbor-search
// backends on classifier-sized training sets.
func BenchmarkKNNSearch(b *testing.B) {
	for _, n := range []int{128, 1024, 8192} {
		pts := make([][]float64, n)
		labels := make([]int, n)
		for i := range pts {
			pts[i] = []float64{float64(i%97) * 0.13, float64(i%61) * 0.29}
			labels[i] = i % 3
		}
		for _, kd := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/bruteforce", n)
			if kd {
				name = fmt.Sprintf("n=%d/kdtree", n)
			}
			b.Run(name, func(b *testing.B) {
				clf, err := knn.NewClassifier(pts, labels, knn.Config{K: 3, UseKDTree: kd})
				if err != nil {
					b.Fatal(err)
				}
				q := []float64{3.1, 4.1}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := clf.Classify(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSelectionOverhead quantifies the paper's §7.3 amortization
// argument: the LARPredictor runs one expert per forecast plus a
// classification (normalize + project + k-NN), while the NWS runs the whole
// pool. With the paper's three *cheap linear* experts the classification
// overhead dominates and the NWS step is actually faster; growing the pool
// shrinks the ratio (25× → ~3× from paper3 to extended8), confirming the
// paper's own caveat that the scheme pays off "the more predictors in the
// pool and the more complex the predictors are".
func BenchmarkSelectionOverhead(b *testing.B) {
	vals := benchTrace(b)
	half := len(vals) / 2
	for _, poolSize := range []string{"paper3", "extended8"} {
		pool := predictors.PaperPool(5)
		if poolSize == "extended8" {
			pool = predictors.ExtendedPool(5)
		}
		cfg := core.DefaultConfig(5)
		cfg.Pool = pool
		lar, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := lar.Train(vals[:half]); err != nil {
			b.Fatal(err)
		}
		window := vals[half : half+5]

		b.Run(poolSize+"/LAR-single-expert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lar.Forecast(window); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(poolSize+"/NWS-all-experts", func(b *testing.B) {
			norm := lar.Normalizer()
			z := norm.Apply(window)
			sel, err := larpredictor.NewCumulativeMSE(pool)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Step(z, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineThroughput drives the sharded multi-stream engine at 1k,
// 10k, and 100k concurrent warm streams. Each op ingests one observation
// per stream (one IngestBatch over every stream) and drains, so time/op is
// the cost of servicing the whole fleet once; streams/sec and samples/sec
// report the resulting throughput (identical here because each pass feeds
// exactly one sample per stream). The acceptance bar is 0 allocs/op in
// steady state — every predictor is past initial training, so the engine,
// its queues, and the forecast path must run entirely on reused buffers:
//
//	go test -bench=BenchmarkEngineThroughput -benchmem
func BenchmarkEngineThroughput(b *testing.B) {
	for _, streams := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			benchEngineThroughput(b, streams)
		})
	}
}

func benchEngineThroughput(b *testing.B, streams int) {
	const trainSize = 60
	eng, err := larpredictor.NewEngine(larpredictor.EngineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("vm%05d/metric%02d", i/12, i%12)
		online, err := larpredictor.NewOnline(larpredictor.OnlineConfig{
			Predictor:   larpredictor.DefaultConfig(5),
			TrainSize:   trainSize,
			AuditWindow: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(ids[i], online); err != nil {
			b.Fatal(err)
		}
	}

	// One pre-built batch carries one sample per stream; feed rewrites the
	// values in place so the timed loop never allocates on the producer side.
	batch := make([]larpredictor.EngineSample, streams)
	feed := func(tick int) {
		for i := range batch {
			batch[i] = larpredictor.EngineSample{
				ID: ids[i], TS: int64(tick),
				Value: 50 + 40*math.Sin(float64(tick+i%7)/9),
			}
		}
		if _, err := eng.IngestBatch(batch); err != nil {
			b.Fatal(err)
		}
	}

	// Warm-up: push every stream through initial training plus a few scored
	// forecasts, so lazily grown audit state is in place and the measured
	// region is pure steady-state forecasting.
	warm := trainSize + 16
	for t := 0; t < warm; t++ {
		feed(t)
	}
	eng.Drain()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed(warm + i)
		eng.Drain()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		rate := float64(b.N) * float64(streams) / s
		b.ReportMetric(rate, "streams/sec")
		b.ReportMetric(rate, "samples/sec")
	}
}

// BenchmarkForecastPath measures the instrumentation tax on the hot
// forecast path: "bare" is an uninstrumented predictor, "metrics" attaches
// a registry (counters + latency histogram), "metrics+tracer" adds the
// per-stage StageTimer on top. The acceptance bar for the observability
// layer is metrics vs bare within 5%:
//
//	go test -bench=BenchmarkForecastPath -count=10 | benchstat -
func BenchmarkForecastPath(b *testing.B) {
	vals := benchTrace(b)
	half := len(vals) / 2
	variants := []struct {
		name string
		opts func() []larpredictor.Option
	}{
		{"bare", func() []larpredictor.Option { return nil }},
		{"metrics", func() []larpredictor.Option {
			return []larpredictor.Option{larpredictor.WithMetrics(larpredictor.NewRegistry())}
		}},
		{"metrics+tracer", func() []larpredictor.Option {
			reg := larpredictor.NewRegistry()
			return []larpredictor.Option{
				larpredictor.WithMetrics(reg),
				larpredictor.WithTracer(larpredictor.NewStageTimer(reg)),
			}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			lar, err := larpredictor.New(larpredictor.DefaultConfig(5), v.opts()...)
			if err != nil {
				b.Fatal(err)
			}
			if err := lar.Train(vals[:half]); err != nil {
				b.Fatal(err)
			}
			window := vals[half : half+5]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lar.Forecast(window); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
