package larpredictor

import (
	"github.com/acis-lab/larpredictor/internal/engine"
)

// Sharded multi-stream prediction engine, re-exported from the internal
// engine package. An Engine fans thousands of concurrent prediction streams
// across a fixed set of shards: each stream ID hashes to one shard, whose
// single worker goroutine steps that shard's predictors in ingestion order,
// so individual Online predictors never need locking. Producers enqueue
// observations with Engine.Ingest / Engine.IngestBatch against a bounded
// per-shard queue whose overflow behavior is selected by a BackpressurePolicy;
// EngineDrain-style barriers (Engine.Drain) flush everything in flight.
type (
	// Engine is the sharded multi-stream prediction engine; see NewEngine.
	Engine = engine.Engine
	// EngineConfig parameterizes an Engine (shard count, queue depth,
	// backpressure policy, stream factory, result callback, metrics).
	EngineConfig = engine.Config
	// EngineSample is one observation of one stream; ID picks the shard.
	EngineSample = engine.Sample
	// EngineResult is the outcome of one processed sample, delivered to
	// EngineConfig.OnResult on the owning shard's worker goroutine.
	EngineResult = engine.Result
	// EngineStreamStats is a supervision snapshot of one stream.
	EngineStreamStats = engine.StreamStats
	// EngineStats aggregates engine-wide counters.
	EngineStats = engine.Stats
	// BackpressurePolicy selects ingest behavior against a full shard
	// queue: BlockPolicy, DropOldestPolicy, or RejectPolicy.
	BackpressurePolicy = engine.Policy
)

// Backpressure policies for EngineConfig.Policy.
const (
	// BlockPolicy makes producers wait for queue space: lossless, applies
	// backpressure upstream. The default.
	BlockPolicy = engine.Block
	// DropOldestPolicy evicts the oldest queued sample to admit the
	// newest: bounded memory and staleness, never blocks producers.
	DropOldestPolicy = engine.DropOldest
	// RejectPolicy fails the ingest with ErrBacklog, shedding load at the
	// caller.
	RejectPolicy = engine.Reject
)

// Engine error values.
var (
	// ErrEngineClosed is returned by ingest after Engine.Close.
	ErrEngineClosed = engine.ErrClosed
	// ErrBacklog is returned under RejectPolicy when a shard queue is full.
	ErrBacklog = engine.ErrBacklog
	// ErrUnknownStream is returned by Engine.Stats lookups for IDs never
	// registered or admitted.
	ErrUnknownStream = engine.ErrUnknownStream
	// ErrDuplicateStream is returned by Engine.Register for an ID already
	// registered.
	ErrDuplicateStream = engine.ErrDuplicateStream
	// ErrStreamPoisoned wraps the error delivered in an EngineResult when
	// a predictor panic poisoned its stream; match with errors.Is.
	ErrStreamPoisoned = engine.ErrPoisoned
)

// NewEngine starts a sharded engine and its per-shard workers. A zero
// EngineConfig yields one shard per CPU, queue depth 1024, and BlockPolicy.
// Register streams up front with Engine.Register, or set
// EngineConfig.NewStream to admit first-seen IDs on demand. Close the
// engine to stop the workers.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return engine.New(cfg)
}

// ParseBackpressurePolicy maps the flag spellings "block", "drop-oldest",
// and "reject" to a BackpressurePolicy.
func ParseBackpressurePolicy(s string) (BackpressurePolicy, error) {
	return engine.ParsePolicy(s)
}
