package larpredictor

import (
	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/multiresource"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// Vote strategies for the k-NN classifier (Config.Vote). The paper uses
// majority voting; the alternatives implement the combination strategies its
// related work surveys.
type VoteStrategy = knn.VoteStrategy

// Vote strategy values.
const (
	// MajorityVote is the paper's rule: one vote per neighbor.
	MajorityVote = knn.MajorityVote
	// DistanceWeightedVote weighs neighbors by inverse distance.
	DistanceWeightedVote = knn.DistanceWeightedVote
	// ProbabilityVote picks the argmax of the normalized weight
	// distribution.
	ProbabilityVote = knn.ProbabilityVote
)

// FullPool returns the ten-expert pool: the extended pool plus the MA and
// ARIMA models from Dinda's host-load study, completing the paper's §8
// future-work roster. Requires windowSize >= 3.
//
// Deprecated: Use BuildPool(windowSize, TierFull).
func FullPool(windowSize int) *Pool {
	return predictors.FullPool(windowSize)
}

// MultiResourceModel predicts one resource using both its own history and a
// correlated auxiliary resource (e.g. CPU from CPU + free memory), the
// multi-resource scheme of Liang et al. that the paper's related work
// describes.
type MultiResourceModel = multiresource.Model

// NewMultiResource returns an unfitted two-series predictor with p target
// lags and q auxiliary lags. Fit with aligned series, then Predict from
// trailing histories of both.
func NewMultiResource(p, q int) *MultiResourceModel {
	return multiresource.New(p, q)
}

// CrossCorrelation returns the lag-k cross-correlation corr(z_t, x_{t-k})
// between two aligned series — the diagnostic that decides whether a
// multi-resource model is worth fitting.
func CrossCorrelation(z, x []float64, k int) (float64, error) {
	return multiresource.CrossCorrelation(z, x, k)
}

// ACF returns the autocorrelation function of v for lags 0..maxLag.
func ACF(v []float64, maxLag int) ([]float64, error) {
	return timeseries.ACF(v, maxLag)
}

// PACF returns the partial autocorrelation function of v for lags
// 1..maxLag — the standard order-selection diagnostic for the AR expert.
func PACF(v []float64, maxLag int) ([]float64, error) {
	return timeseries.PACF(v, maxLag)
}

// LjungBox tests whether v carries autocorrelation worth modeling (the
// precondition for history-based prediction): it returns the portmanteau
// statistic over the given lags and whether white noise is rejected at the
// 5% level.
func LjungBox(v []float64, lags int) (q float64, autocorrelated bool, err error) {
	return timeseries.LjungBox(v, lags)
}
