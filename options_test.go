package larpredictor_test

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	larpredictor "github.com/acis-lab/larpredictor"
)

// TestFacadeOptions trains through the options API and checks that
// WithPool/WithVote override the Config fields, WithMetrics populates a
// registry, and WithTracer sees every pipeline stage.
func TestFacadeOptions(t *testing.T) {
	vals := workload(t)

	pool, err := larpredictor.BuildPool(5, larpredictor.TierExtended)
	if err != nil {
		t.Fatal(err)
	}
	reg := larpredictor.NewRegistry()
	rec := larpredictor.NewSpanRecorder()

	p, err := larpredictor.New(larpredictor.DefaultConfig(5),
		larpredictor.WithPool(pool),
		larpredictor.WithVote(larpredictor.DistanceWeightedVote),
		larpredictor.WithMetrics(reg),
		larpredictor.WithTracer(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(vals[:144]); err != nil {
		t.Fatal(err)
	}
	if got := p.Pool(); got.Size() != pool.Size() {
		t.Errorf("pool size %d, want %d (WithPool ignored?)", got.Size(), pool.Size())
	}
	if _, err := p.Forecast(vals[139:144]); err != nil {
		t.Fatal(err)
	}

	counts := rec.CountByStage()
	for _, stage := range []larpredictor.Stage{
		larpredictor.StageTrain,
		larpredictor.StageNormalize,
		larpredictor.StagePCAProject,
		larpredictor.StageKNNClassify,
		larpredictor.StageExpertForecast,
	} {
		if counts[stage] == 0 {
			t.Errorf("tracer saw no %s spans", stage)
		}
	}

	srv := httptest.NewServer(larpredictor.MetricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`larpredictor_forecasts_total{source="LAR"} 1`,
		"larpredictor_classifier_decisions_total{",
		"larpredictor_forecast_seconds_bucket{",
		"larpredictor_train_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestFacadeBuildPool pins the tier rosters and error paths.
func TestFacadeBuildPool(t *testing.T) {
	sizes := map[larpredictor.PoolTier]int{
		larpredictor.TierPaper:    3,
		larpredictor.TierExtended: 8,
		larpredictor.TierFull:     10,
	}
	for tier, want := range sizes {
		p, err := larpredictor.BuildPool(5, tier)
		if err != nil {
			t.Fatalf("BuildPool(5, %v): %v", tier, err)
		}
		if p.Size() != want {
			t.Errorf("BuildPool(5, %v) size %d, want %d", tier, p.Size(), want)
		}
	}
	// Extra experts append after the tier roster.
	p, err := larpredictor.BuildPool(5, larpredictor.TierPaper, &tripler{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 || p.At(3).Name() != "TRIPLE" {
		t.Errorf("extra expert not appended: size %d", p.Size())
	}
	// The full tier needs room for MA/ARIMA lags.
	if _, err := larpredictor.BuildPool(2, larpredictor.TierFull); err == nil {
		t.Error("BuildPool(2, TierFull) succeeded, want error")
	}
	if _, err := larpredictor.BuildPool(5, larpredictor.PoolTier(99)); err == nil {
		t.Error("BuildPool with unknown tier succeeded, want error")
	}
	// Deprecated wrappers still produce the same rosters.
	if larpredictor.PaperPool(5).Size() != 3 ||
		larpredictor.ExtendedPool(5).Size() != 8 ||
		larpredictor.FullPool(5).Size() != 10 {
		t.Error("deprecated pool wrappers diverge from BuildPool")
	}
}

// tripler is a trivial custom expert for the extra-argument test.
type tripler struct{}

func (*tripler) Name() string              { return "TRIPLE" }
func (*tripler) Order() int                { return 1 }
func (*tripler) Fit(train []float64) error { return nil }
func (*tripler) Predict(window []float64) (float64, error) {
	if len(window) == 0 {
		return 0, larpredictor.ErrWindowTooShort
	}
	return 3 * window[len(window)-1], nil
}

// TestFacadeOnlineStep drives the streaming predictor through Step and
// checks it matches the Observe+Forecast contract.
func TestFacadeOnlineStep(t *testing.T) {
	vals := workload(t)
	o, err := larpredictor.NewOnline(larpredictor.OnlineConfig{
		Predictor:    larpredictor.DefaultConfig(5),
		TrainSize:    60,
		AuditWindow:  12,
		MSEThreshold: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	var forecasts int
	for _, v := range vals[:144] {
		pred, health, err := o.Step(v)
		if err != nil {
			if errors.Is(err, larpredictor.ErrNotReady) {
				continue // still warming up
			}
			t.Fatal(err)
		}
		forecasts++
		if pred.Source != larpredictor.SourceLAR {
			t.Fatalf("source %s on a clean stream", pred.Source)
		}
		if health != larpredictor.Healthy {
			t.Fatalf("health %s on a clean stream", health)
		}
	}
	if forecasts == 0 {
		t.Fatal("Step never produced a forecast")
	}
	if o.HealthStats().State != larpredictor.Healthy {
		t.Errorf("end state %s", o.HealthStats().State)
	}
}
