module github.com/acis-lab/larpredictor

go 1.22
